//! Typed dense indices and index-keyed vectors.

use crate::Idx;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// Defines a `Copy` newtype over `u32` implementing [`Idx`].
///
/// This is the arena-index idiom used by compiler IRs: every entity class
/// (variables, fields, allocation sites, CFG nodes, ...) gets its own index
/// type so they cannot be confused.
///
/// # Examples
///
/// ```
/// pda_util::define_idx!(
///     /// A demo index.
///     DemoId
/// );
/// use pda_util::Idx;
/// let d = DemoId::from_usize(3);
/// assert_eq!(d.index(), 3);
/// assert_eq!(format!("{d:?}"), "DemoId(3)");
/// ```
#[macro_export]
macro_rules! define_idx {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $crate::Idx for $name {
            fn from_usize(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl ::core::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ::core::fmt::Display for $name {
            fn fmt(&self, f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

/// A `Vec` indexed by a typed index instead of `usize`.
///
/// # Examples
///
/// ```
/// pda_util::define_idx!(NodeId);
/// use pda_util::{Idx, IdxVec};
/// let mut v: IdxVec<NodeId, &str> = IdxVec::new();
/// let n = v.push("entry");
/// assert_eq!(v[n], "entry");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct IdxVec<I: Idx, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: Idx, T> IdxVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        IdxVec {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Appends a value and returns its index.
    pub fn push(&mut self, value: T) -> I {
        let i = I::from_usize(self.raw.len());
        self.raw.push(value);
        i
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Returns `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Iterates over `(index, &value)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterates over values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> {
        (0..self.raw.len()).map(I::from_usize)
    }

    /// Borrow element `i`, or `None` if out of range.
    pub fn get(&self, i: I) -> Option<&T> {
        self.raw.get(i.index())
    }

    /// The raw backing slice.
    pub fn raw(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Idx, T> Default for IdxVec<I, T> {
    fn default() -> Self {
        IdxVec::new()
    }
}

impl<I: Idx, T> Index<I> for IdxVec<I, T> {
    type Output = T;
    fn index(&self, i: I) -> &T {
        &self.raw[i.index()]
    }
}

impl<I: Idx, T> IndexMut<I> for IdxVec<I, T> {
    fn index_mut(&mut self, i: I) -> &mut T {
        &mut self.raw[i.index()]
    }
}

impl<I: Idx, T> FromIterator<T> for IdxVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        IdxVec {
            raw: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<'a, I: Idx, T> IntoIterator for &'a IdxVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Idx, IdxVec};

    define_idx!(TestId);

    #[test]
    fn push_and_index() {
        let mut v: IdxVec<TestId, i32> = IdxVec::new();
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        v[a] = 11;
        assert_eq!(v[a], 11);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn enumerated_matches_indices() {
        let v: IdxVec<TestId, char> = "abc".chars().collect();
        let pairs: Vec<_> = v.iter_enumerated().map(|(i, &c)| (i.index(), c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
        assert_eq!(v.indices().count(), 3);
        assert_eq!(v.get(TestId(9)), None);
    }

    #[test]
    fn display_and_debug() {
        let i = TestId::from_usize(7);
        assert_eq!(format!("{i}"), "7");
        assert_eq!(format!("{i:?}"), "TestId(7)");
    }
}
