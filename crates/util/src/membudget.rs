//! Byte-accounted memory budgets for the resource governor.
//!
//! A [`MemBudget`] is an atomic ledger of *estimated* bytes: the engines
//! charge deterministic, count-based size estimates (never RSS or other
//! wall-clock-adjacent measurements) at their allocation hot spots, and
//! the TRACER governor polls the ledger at CEGAR iteration boundaries to
//! decide whether to walk its degradation ladder. Because every charge is
//! a pure function of the work performed, pressure — and therefore every
//! degradation decision — is bit-reproducible across runs and machines.
//!
//! Budgets form a two-level hierarchy: each query charges its own budget,
//! and optionally a shared batch **pool** (the parent) so the batch
//! scheduler can see aggregate pressure for admission control. Charges
//! cascade to the parent; the parent never influences a *running* query
//! (that would make per-query behavior schedule-dependent) — it only
//! gates when queries start.
//!
//! ```
//! use pda_util::MemBudget;
//! let b = MemBudget::new(Some(1024));
//! b.charge(2000);
//! b.release(2000);
//! assert!(b.take_pressure());      // the 2000-byte spike is observed …
//! assert!(!b.take_pressure());     // … exactly once: peak reset to usage
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An atomic byte ledger with an optional limit and an optional parent
/// pool that charges cascade into.
#[derive(Debug, Default)]
pub struct MemBudget {
    limit: Option<u64>,
    used: AtomicU64,
    peak: AtomicU64,
    total: AtomicU64,
    parent: Option<Arc<MemBudget>>,
}

impl MemBudget {
    /// A budget with the given byte limit (`None` = accounting only,
    /// never under pressure).
    pub fn new(limit: Option<u64>) -> MemBudget {
        MemBudget { limit, ..MemBudget::default() }
    }

    /// A limitless ledger (counts bytes, never reports pressure).
    pub fn unlimited() -> MemBudget {
        MemBudget::new(None)
    }

    /// A budget whose charges also cascade into `parent` (the shared
    /// batch pool).
    pub fn with_parent(limit: Option<u64>, parent: Arc<MemBudget>) -> MemBudget {
        MemBudget { limit, parent: Some(parent), ..MemBudget::default() }
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Records `bytes` as allocated. Saturating; returns `bytes` so call
    /// sites can stash the amount for the matching [`MemBudget::release`].
    pub fn charge(&self, bytes: u64) -> u64 {
        let now = self
            .used
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        self.peak.fetch_max(now, Ordering::Relaxed);
        self.total.fetch_add(bytes, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.charge(bytes);
        }
        bytes
    }

    /// Records `bytes` as freed (saturating at zero).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            });
        if let Some(p) = &self.parent {
            p.release(bytes);
        }
    }

    /// Currently outstanding (charged, not yet released) bytes.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Cumulative bytes ever charged (never decreases).
    pub fn total_charged(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether a further `bytes` would still fit under the limit.
    /// Always `true` for a limitless budget.
    pub fn fits(&self, bytes: u64) -> bool {
        match self.limit {
            None => true,
            Some(l) => self.used().saturating_add(bytes) <= l,
        }
    }

    /// Polls (and consumes) the pressure signal: `true` iff the peak
    /// usage since the previous poll exceeded the limit. The peak resets
    /// to the *current* usage, so transient spikes are observed exactly
    /// once. Always `false` for a limitless budget.
    pub fn take_pressure(&self) -> bool {
        let Some(limit) = self.limit else { return false };
        let peak = self.peak.swap(self.used(), Ordering::Relaxed);
        peak > limit
    }
}

/// Parses a human byte size: a plain integer, optionally suffixed with
/// `k`/`m`/`g` (case-insensitive, powers of 1024). Returns `None` for
/// anything else, including overflow.
///
/// ```
/// use pda_util::parse_bytes;
/// assert_eq!(parse_bytes("4096"), Some(4096));
/// assert_eq!(parse_bytes("64k"), Some(64 << 10));
/// assert_eq!(parse_bytes("2M"), Some(2 << 20));
/// assert_eq!(parse_bytes("1g"), Some(1 << 30));
/// assert_eq!(parse_bytes("lots"), None);
/// ```
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_and_totals() {
        let b = MemBudget::new(Some(100));
        assert_eq!(b.charge(60), 60);
        assert_eq!(b.used(), 60);
        assert!(b.fits(40));
        assert!(!b.fits(41));
        b.release(60);
        assert_eq!(b.used(), 0);
        assert_eq!(b.total_charged(), 60);
        b.release(10); // saturates, never underflows
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn pressure_is_peak_based_and_consumed() {
        let b = MemBudget::new(Some(100));
        b.charge(150);
        b.release(150);
        assert!(b.take_pressure(), "spike above the limit must be seen");
        assert!(!b.take_pressure(), "and seen exactly once");
        b.charge(150);
        assert!(b.take_pressure());
        assert!(b.take_pressure(), "sustained usage keeps signaling");
        b.release(150);
    }

    #[test]
    fn unlimited_never_pressures_but_counts() {
        let b = MemBudget::unlimited();
        b.charge(u64::MAX);
        assert!(!b.take_pressure());
        assert!(b.fits(u64::MAX));
        assert_eq!(b.total_charged(), u64::MAX);
    }

    #[test]
    fn charges_cascade_to_parent() {
        let pool = Arc::new(MemBudget::new(Some(1000)));
        let q = MemBudget::with_parent(Some(100), Arc::clone(&pool));
        q.charge(80);
        assert_eq!(pool.used(), 80);
        q.release(80);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.total_charged(), 80);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes(" 10 "), Some(10));
        assert_eq!(parse_bytes("3K"), Some(3072));
        assert_eq!(parse_bytes("5m"), Some(5 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("k"), None);
        assert_eq!(parse_bytes("-1"), None);
        assert_eq!(parse_bytes("99999999999999999999g"), None);
    }
}
