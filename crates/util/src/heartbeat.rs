//! Thread-local progress heartbeat for watchdog supervision.
//!
//! A transport that runs a solve on a dedicated worker thread installs a
//! shared counter with [`install_heartbeat`]; the engine calls [`beat`]
//! at every CEGAR iteration boundary. A monitor on the requesting thread
//! watches the counter: while it keeps moving the request is slow but
//! alive, and when it stops for longer than the watchdog budget the
//! request is *non-cooperatively stalled* — stuck somewhere that never
//! polls its deadline — and can be abandoned.
//!
//! When no heartbeat is installed (every non-watched path), [`beat`] is a
//! thread-local read of a `None` and nothing else.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static BEAT: RefCell<Option<Arc<AtomicU64>>> = const { RefCell::new(None) };
}

/// Restores the previously installed heartbeat (usually none) on drop.
#[derive(Debug)]
pub struct HeartbeatGuard {
    prev: Option<Arc<AtomicU64>>,
}

/// Installs `slot` as the calling thread's heartbeat counter until the
/// returned guard drops. Nested installs restore the outer slot.
#[must_use]
pub fn install_heartbeat(slot: Arc<AtomicU64>) -> HeartbeatGuard {
    let prev = BEAT.with(|b| b.borrow_mut().replace(slot));
    HeartbeatGuard { prev }
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        BEAT.with(|b| *b.borrow_mut() = prev);
    }
}

/// Bumps the calling thread's heartbeat counter, if one is installed.
pub fn beat() {
    BEAT.with(|b| {
        if let Some(slot) = b.borrow().as_ref() {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_only_while_installed_and_restores_outer() {
        let outer = Arc::new(AtomicU64::new(0));
        let inner = Arc::new(AtomicU64::new(0));
        beat(); // no slot installed: a no-op
        {
            let _g = install_heartbeat(Arc::clone(&outer));
            beat();
            {
                let _g2 = install_heartbeat(Arc::clone(&inner));
                beat();
                beat();
            }
            beat(); // outer restored
        }
        beat(); // nothing installed again
        assert_eq!(outer.load(Ordering::Relaxed), 2);
        assert_eq!(inner.load(Ordering::Relaxed), 2);
    }
}
