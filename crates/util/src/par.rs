//! Work-pool and lock-striping helpers for the data-parallel paths.
//!
//! Two small, `std`-only pieces shared by the batch scheduler and the
//! interned meta-kernel:
//!
//! * [`scoped_chunk_map`] — splits a slice into near-equal contiguous
//!   chunks and maps a function over them on a [`std::thread::scope`]
//!   pool, returning per-chunk results **in chunk order**. The chunking
//!   is a pure function of `(len, jobs)`, so a caller that merges chunk
//!   results in index order gets output independent of thread schedule.
//!   Panics from worker chunks are re-raised on the calling thread with
//!   their original payload (no wrapping), so fault-injection messages
//!   survive the parallel path verbatim.
//! * [`StripedLock`] — `N` mutex-protected shards selected by a caller
//!   hash, so independent keys stop convoying on a single `Mutex`. The
//!   accessor meters *contended* lock waits into an [`AtomicU64`] of
//!   microseconds: the clock is read only when `try_lock` fails, so the
//!   uncontended fast path costs no timing syscalls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Splits `items` into `jobs` near-equal contiguous chunks and applies
/// `f(chunk_index, chunk)` to each on a scoped thread pool, returning the
/// results in chunk order.
///
/// The first chunk runs on the calling thread (no spawn when `jobs <= 1`
/// or the slice is empty). Chunk boundaries depend only on
/// `(items.len(), jobs)`: chunk sizes are `ceil(len / jobs)` with the
/// remainder spread over the leading chunks, so a deterministic merge is
/// simply concatenation in return order.
///
/// # Panics
///
/// If any chunk's `f` panics, the payload is re-raised here via
/// [`std::panic::resume_unwind`] — callers see the original panic, not a
/// join error.
pub fn scoped_chunk_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(0, items)];
    }
    let base = items.len() / jobs;
    let rem = items.len() % jobs;
    let mut chunks: Vec<&[T]> = Vec::with_capacity(jobs);
    let mut off = 0;
    for c in 0..jobs {
        let len = base + usize::from(c < rem);
        chunks.push(&items[off..off + len]);
        off += len;
    }
    let mut out: Vec<R> = Vec::with_capacity(jobs);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .skip(1)
            .map(|(c, chunk)| scope.spawn(move || f(c, chunk)))
            .collect();
        out.push(f(0, chunks[0]));
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A lock-striped value store: `N` independent [`Mutex`] shards selected
/// by a caller-supplied hash, so threads touching distinct keys rarely
/// contend. Used by the batch scheduler's forward-run cache (shards of
/// the slot map) and the warm meta store.
#[derive(Debug)]
pub struct StripedLock<T> {
    shards: Box<[Mutex<T>]>,
}

impl<T: Default> StripedLock<T> {
    /// `n` default-initialized shards (rounded up to at least 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        StripedLock { shards: (0..n).map(|_| Mutex::new(T::default())).collect() }
    }
}

impl<T> StripedLock<T> {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Locks the shard for `hash`, metering any *contended* wait into
    /// `wait_micros`. The uncontended path is a plain `try_lock` with no
    /// clock read; only when the shard is held elsewhere does the caller
    /// pay two `Instant` reads around the blocking `lock`.
    pub fn lock(&self, hash: u64, wait_micros: &AtomicU64) -> MutexGuard<'_, T> {
        let shard = &self.shards[(hash % self.shards.len() as u64) as usize];
        match shard.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                let t0 = Instant::now();
                let g = shard.lock().expect("striped shard poisoned");
                wait_micros.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                g
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("striped shard poisoned"),
        }
    }

    /// Visits every shard in index order (used to drain aggregate stats
    /// once concurrent use has ended).
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for s in self.shards.iter() {
            f(&s.lock().expect("striped shard poisoned"));
        }
    }
}

/// FNV-1a over bytes: the deterministic, dependency-free hash used to
/// pick [`StripedLock`] shards (the std `RandomState` hasher is seeded
/// per-process, which would make shard assignment — and therefore
/// contention patterns — non-reproducible).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_map_preserves_order_and_covers_all_items() {
        let items: Vec<u32> = (0..23).collect();
        for jobs in [1, 2, 3, 4, 8, 23, 100] {
            let chunks = scoped_chunk_map(&items, jobs, |_, c| c.to_vec());
            let flat: Vec<u32> = chunks.concat();
            assert_eq!(flat, items, "jobs={jobs}");
            assert_eq!(chunks.len(), jobs.min(items.len()));
            // Near-equal: sizes differ by at most one.
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "jobs={jobs} sizes={sizes:?}");
        }
    }

    #[test]
    fn chunk_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(scoped_chunk_map(&empty, 4, |_, c| c.len()).is_empty());
        assert_eq!(scoped_chunk_map(&[7u32], 4, |_, c| c[0]), vec![7]);
    }

    #[test]
    fn chunk_map_propagates_original_panic_payload() {
        let items: Vec<u32> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            scoped_chunk_map(&items, 4, |c, _| {
                if c == 2 {
                    panic!("injected chunk fault");
                }
                0u32
            })
        });
        let payload = caught.expect_err("chunk panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected chunk fault", "payload must survive verbatim");
    }

    #[test]
    fn striped_lock_shards_and_meters() {
        let lock: StripedLock<Vec<u32>> = StripedLock::new(4);
        assert_eq!(lock.shards(), 4);
        let waits = AtomicU64::new(0);
        for k in 0..16u64 {
            lock.lock(k, &waits).push(k as u32);
        }
        let mut total = 0;
        lock.for_each(|v| total += v.len());
        assert_eq!(total, 16);
        // Uncontended single-threaded use never reads the clock.
        assert_eq!(waits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
    }
}
