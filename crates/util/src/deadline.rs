//! Cooperative wall-clock deadlines.
//!
//! A [`Deadline`] is a tiny cancel token: an optional absolute
//! [`Instant`] after which long-running loops should stop. It is `Copy`,
//! so it threads through limit structs (`RhsLimits`, solver calls) with
//! no sharing machinery; "shared" here means every component of one query
//! observes the *same* instant, so the whole pipeline — tabulation inner
//! loop, DPLL search, CEGAR iteration — gives up coherently.
//!
//! The token is *cooperative*: nothing is interrupted preemptively. Hot
//! loops poll [`Deadline::expired`] every few hundred steps (an `Instant`
//! read is tens of nanoseconds, so polling is essentially free at that
//! granularity).

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

thread_local! {
    /// The deadline governing whatever work this thread is currently
    /// doing, for code (injected stalls, fault actions) that sits outside
    /// the normal limit-struct plumbing.
    static AMBIENT: Cell<Deadline> = const { Cell::new(Deadline::NEVER) };
}

/// An optional absolute point in time after which work should stop.
///
/// The default ([`Deadline::NEVER`]) never expires, so existing call
/// sites opt in by construction only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// The deadline that never expires.
    pub const NEVER: Deadline = Deadline(None);

    /// A deadline `d` from now. Saturates to [`Deadline::NEVER`] on
    /// `Instant` overflow (absurdly large durations).
    pub fn after(d: Duration) -> Deadline {
        Deadline(Instant::now().checked_add(d))
    }

    /// A deadline at the absolute instant `t`.
    pub fn at(t: Instant) -> Deadline {
        Deadline(Some(t))
    }

    /// Converts an optional timeout: `None` means no deadline.
    pub fn timeout(t: Option<Duration>) -> Deadline {
        match t {
            None => Deadline::NEVER,
            Some(d) => Deadline::after(d),
        }
    }

    /// Returns `true` if this deadline can never expire.
    pub fn is_never(&self) -> bool {
        self.0.is_none()
    }

    /// Returns `true` once the deadline has passed. A zero-duration
    /// deadline reports expired from the first check.
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left, or `None` for a never-expiring deadline. Zero once
    /// expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines (never-expiring counts as latest).
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.0, other.0) {
            (None, _) => other,
            (_, None) => self,
            (Some(a), Some(b)) => Deadline(Some(a.min(b))),
        }
    }

    /// `Err(DeadlineExceeded)` once expired, for `?`-style call sites.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.expired() {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// The deadline governing the current thread's work, as installed by
    /// the innermost live [`Deadline::enter_ambient`] scope
    /// ([`Deadline::NEVER`] outside any scope).
    pub fn ambient() -> Deadline {
        AMBIENT.with(Cell::get)
    }

    /// Publishes this deadline as the thread's ambient deadline for the
    /// returned guard's lifetime. Scopes nest: dropping the guard
    /// restores whatever was ambient before.
    ///
    /// Solve entry points install their per-query/per-attempt deadline
    /// here so out-of-band sleepers — injected `stall` faults, the
    /// `Fault::Stall` client — can poll it and cut a sleep short, even
    /// though they sit outside the limit-struct plumbing.
    #[must_use = "the ambient scope ends when the guard drops"]
    pub fn enter_ambient(self) -> AmbientDeadlineGuard {
        let prev = AMBIENT.with(|c| c.replace(self));
        AmbientDeadlineGuard { prev }
    }
}

/// Restores the previous ambient deadline on drop (see
/// [`Deadline::enter_ambient`]).
#[derive(Debug)]
pub struct AmbientDeadlineGuard {
    prev: Deadline,
}

impl Drop for AmbientDeadlineGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

/// The error reported by work aborted at an expired [`Deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wall-clock deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_expires() {
        let d = Deadline::NEVER;
        assert!(d.is_never());
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.check().is_ok());
        assert_eq!(Deadline::timeout(None), Deadline::NEVER);
        assert_eq!(Deadline::default(), Deadline::NEVER);
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.check(), Err(DeadlineExceeded));
    }

    #[test]
    fn far_future_not_expired() {
        let d = Deadline::timeout(Some(Duration::from_secs(3600)));
        assert!(!d.is_never());
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn min_picks_earlier() {
        let soon = Deadline::after(Duration::ZERO);
        let late = Deadline::after(Duration::from_secs(3600));
        assert_eq!(soon.min(late), soon);
        assert_eq!(late.min(soon), soon);
        assert_eq!(Deadline::NEVER.min(soon), soon);
        assert_eq!(soon.min(Deadline::NEVER), soon);
        assert_eq!(Deadline::NEVER.min(Deadline::NEVER), Deadline::NEVER);
    }

    #[test]
    fn saturating_overflow_is_never() {
        // An `Instant` cannot represent now + Duration::MAX; `after`
        // saturates to a never-expiring deadline instead of panicking.
        let d = Deadline::after(Duration::MAX);
        assert!(d.is_never() || !d.expired());
    }

    #[test]
    fn ambient_scopes_nest_and_restore() {
        assert_eq!(Deadline::ambient(), Deadline::NEVER);
        let outer = Deadline::after(Duration::from_secs(3600));
        {
            let _a = outer.enter_ambient();
            assert_eq!(Deadline::ambient(), outer);
            let inner = Deadline::after(Duration::from_secs(60));
            {
                let _b = inner.enter_ambient();
                assert_eq!(Deadline::ambient(), inner);
            }
            assert_eq!(Deadline::ambient(), outer);
        }
        assert_eq!(Deadline::ambient(), Deadline::NEVER);
    }

    #[test]
    fn display_and_error() {
        let e = DeadlineExceeded;
        assert_eq!(e.to_string(), "wall-clock deadline exceeded");
        let _: &dyn std::error::Error = &e;
    }
}
