//! Structured observability for the CEGAR loop: counters, spans, and a
//! typed trace-event stream.
//!
//! Three pieces, all registry-free and `std`-only:
//!
//! 1. **[`ObsRegistry`]** — a fixed-size counter/histogram registry. Every
//!    quantity the drivers report (batch throughput, forward-run cache
//!    effectiveness, meta-kernel cube/wp/subsumption counters, DPLL
//!    search nodes) is a [`Counter`] slot; every timed phase (DPLL solve,
//!    forward RHS run, backward meta-analysis, `approx`/`drop_k`,
//!    viable-set update) is a [`SpanKind`] slot with count, total/max
//!    duration, and a power-of-two latency histogram. The registry is the
//!    single snapshot type behind every driver footer
//!    ([`ObsRegistry::render`]).
//! 2. **Spans** — [`Span::enter`]/[`Span::exit`] (and the RAII
//!    [`SpanGuard`]) bracket a phase. Timing is gated on
//!    [`ObsRegistry::set_timed`]: when off (the default), entering a span
//!    costs one array increment and **no** clock read, so production runs
//!    pay nothing measurable.
//! 3. **Events** — the typed [`Event`] stream ([`Event::IterationStart`],
//!    [`Event::QueryResolved`], ...) encoded as hand-rolled JSONL (same
//!    codec style as the batch checkpoint format) behind the
//!    [`TraceSink`] trait with [`NullSink`], [`FileSink`], and in-memory
//!    [`Recorder`] implementations. Events deliberately carry **no
//!    wall-clock data**, so a seeded run's trace is byte-identical across
//!    machines and worker counts.

use crate::json::{json_escape, parse_json_line};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

// ---- counters ----

/// One scalar slot in the [`ObsRegistry`].
///
/// The discriminant doubles as the storage index, so counter access is a
/// bounds-check-free array load in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Queries in the batch.
    Queries,
    /// Worker threads used.
    Jobs,
    /// Batch wall time, µs.
    WallMicros,
    /// CEGAR iterations across all queries.
    Iterations,
    /// Fact-budget escalations taken.
    Escalations,
    /// Forward RHS runs executed.
    ForwardRuns,
    /// Forward-run cache hits.
    CacheHits,
    /// Forward-run cache misses.
    CacheMisses,
    /// Queries that panicked inside the engine.
    EngineFaults,
    /// Queries aborted by a wall-clock deadline.
    DeadlineExceeded,
    /// Queries restored from a checkpoint.
    Resumed,
    /// DPLL search-tree nodes visited.
    SolverNodes,
    /// Cubes materialized by the meta-analysis.
    CubesBuilt,
    /// Cube subsumption (`implies`) checks.
    SubsumptionChecks,
    /// Subsumption checks rejected by the signature fast path.
    SubsumptionFastRejects,
    /// wp-memo hits.
    WpHits,
    /// wp-memo misses.
    WpMisses,
    /// Cubes dropped by `approx`/`drop_k` beam pruning.
    ApproxDrops,
    /// Wall time inside the backward meta-analysis, µs.
    MetaMicros,
    /// Bytes charged against memory budgets (cumulative, incl. released).
    MemCharged,
    /// Memory-governor degradation-ladder steps applied.
    Degradations,
    /// wp-memo entries evicted (and caches reset) under memory pressure.
    MemEvictions,
    /// Batch admissions deferred (shed-and-requeued) for pool pressure.
    Shed,
    /// Transient-fault retry attempts consumed (deterministic backoff
    /// ladder; see the batch scheduler's `RetryPolicy`).
    Retries,
    /// Microseconds workers spent blocked on *contended* shared locks
    /// (forward-cache shards, the admission turnstile). A counter, not an
    /// [`Event`]: events deliberately carry no wall-clock data, so
    /// contention is attributable from the footer without perturbing
    /// trace byte-identity.
    LockWaitMicros,
    /// Wall time inside the viable-set solver (DPLL search or BDD
    /// conjoin + min-cost sweep), µs. Always-on like
    /// [`Counter::MetaMicros`], so the batch footers and
    /// `BENCH_batch.json` can split solver wall out per engine even with
    /// span timing off.
    SolverMicros,
    /// Faults fired by the deterministic fault plane
    /// (`--fault-plan`/`PDA_FAULT_PLAN`), all action classes.
    FaultsInjected,
    /// I/O-class injected faults (`ioerr`/`shortwrite`), a subset of
    /// [`Counter::FaultsInjected`].
    IoFaults,
    /// Non-cooperative stalls reclaimed by the serve watchdog.
    WatchdogFired,
}

/// Number of [`Counter`] slots.
pub const N_COUNTERS: usize = Counter::WatchdogFired as usize + 1;

// ---- spans ----

/// A timed phase of the CEGAR loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// DPLL minimum-cost SAT solve.
    Solver,
    /// Forward RHS dataflow run.
    Forward,
    /// Backward meta-analysis over the counterexample trace.
    Backward,
    /// `approx`/`drop_k` beam pruning (inside the backward phase).
    Approx,
    /// Viable-set update: restrict, negate, learn the new constraint.
    Viable,
}

/// Number of [`SpanKind`] slots.
pub const N_SPANS: usize = SpanKind::Viable as usize + 1;

/// Power-of-two latency buckets per span: bucket `i` counts durations
/// whose bit length is `i` — i.e. `d ∈ [2^(i-1), 2^i)` µs for `i >= 1`,
/// with bucket 0 holding `d = 0`; the last bucket is open-ended.
pub const N_HIST_BUCKETS: usize = 20;

/// Aggregated measurements for one [`SpanKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total duration, µs (0 unless timing is on).
    pub micros: u64,
    /// Longest single span, µs (0 unless timing is on).
    pub max_micros: u64,
    /// Power-of-two duration histogram (empty unless timing is on).
    pub hist: [u64; N_HIST_BUCKETS],
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats { count: 0, micros: 0, max_micros: 0, hist: [0; N_HIST_BUCKETS] }
    }
}

impl SpanStats {
    /// Mean duration in µs (0 when no span was timed).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.micros as f64 / self.count as f64
        }
    }
}

fn hist_bucket(micros: u64) -> usize {
    ((64 - micros.leading_zeros()) as usize).min(N_HIST_BUCKETS - 1)
}

/// An in-flight span, opened with [`Span::enter`] and closed with
/// [`Span::exit`].
///
/// The two-call shape (rather than a `Drop` guard) lets the registry be
/// borrowed mutably *during* the span — the common case in the kernels,
/// where the bracketed code itself bumps counters. When the registry is
/// idle for the whole phase, prefer the RAII [`ObsRegistry::span`].
#[must_use = "a span must be closed with exit()"]
pub struct Span {
    kind: SpanKind,
    start: Option<Instant>,
}

impl Span {
    /// Opens a span. Reads the clock only when `reg` has timing enabled.
    #[inline]
    pub fn enter(reg: &ObsRegistry, kind: SpanKind) -> Span {
        Span { kind, start: if reg.timed { Some(Instant::now()) } else { None } }
    }

    /// Closes the span, recording it into `reg`.
    #[inline]
    pub fn exit(self, reg: &mut ObsRegistry) {
        reg.close_span(self.kind, self.start);
    }
}

/// RAII form of [`Span`]: records on drop. Borrows the registry for the
/// span's whole extent.
pub struct SpanGuard<'a> {
    reg: &'a mut ObsRegistry,
    kind: SpanKind,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.reg.close_span(self.kind, self.start);
    }
}

// ---- the registry ----

/// Fixed-size counter + span registry; the one snapshot type every
/// driver footer renders.
///
/// `Default` yields an all-zero, **untimed** registry: spans count but do
/// not read the clock, so the hot path stays free of `Instant::now`
/// calls. Enable timing with [`ObsRegistry::set_timed`] (the CLI's
/// `--metrics`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsRegistry {
    counters: [u64; N_COUNTERS],
    spans: [SpanStats; N_SPANS],
    timed: bool,
}

impl Default for ObsRegistry {
    fn default() -> Self {
        ObsRegistry {
            counters: [0; N_COUNTERS],
            spans: [SpanStats::default(); N_SPANS],
            timed: false,
        }
    }
}

impl ObsRegistry {
    /// An all-zero, untimed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables span timing (clock reads).
    pub fn set_timed(&mut self, timed: bool) {
        self.timed = timed;
    }

    /// Whether span timing (clock reads) is enabled.
    pub fn timed(&self) -> bool {
        self.timed
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    /// Sets a counter to an absolute value.
    #[inline]
    pub fn set(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] = n;
    }

    /// Reads a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Reads a span's aggregate.
    pub fn span_stats(&self, k: SpanKind) -> &SpanStats {
        &self.spans[k as usize]
    }

    /// Opens an RAII span guard (see [`SpanGuard`]).
    pub fn span(&mut self, kind: SpanKind) -> SpanGuard<'_> {
        let start = if self.timed { Some(Instant::now()) } else { None };
        SpanGuard { reg: self, kind, start }
    }

    fn close_span(&mut self, kind: SpanKind, start: Option<Instant>) {
        let s = &mut self.spans[kind as usize];
        s.count += 1;
        if let Some(t0) = start {
            let us = t0.elapsed().as_micros() as u64;
            s.micros += us;
            s.max_micros = s.max_micros.max(us);
            s.hist[hist_bucket(us)] += 1;
        }
    }

    /// Records an externally measured duration against a span (used where
    /// the caller already pays for the clock read, e.g. the backward
    /// phase's always-on meta timer).
    pub fn record_span_micros(&mut self, kind: SpanKind, micros: u64) {
        let s = &mut self.spans[kind as usize];
        s.count += 1;
        s.micros += micros;
        s.max_micros = s.max_micros.max(micros);
        s.hist[hist_bucket(micros)] += 1;
    }

    /// Accumulates another registry into this one (counters add, spans
    /// merge; the timing flag is unchanged).
    pub fn merge(&mut self, other: &ObsRegistry) {
        for i in 0..N_COUNTERS {
            self.counters[i] += other.counters[i];
        }
        for i in 0..N_SPANS {
            let (a, b) = (&mut self.spans[i], &other.spans[i]);
            a.count += b.count;
            a.micros += b.micros;
            a.max_micros = a.max_micros.max(b.max_micros);
            for j in 0..N_HIST_BUCKETS {
                a.hist[j] += b.hist[j];
            }
        }
    }

    /// Counter-wise difference versus an earlier snapshot (saturating;
    /// span data is differenced on count/micros only).
    pub fn since(&self, earlier: &ObsRegistry) -> ObsRegistry {
        let mut out = ObsRegistry { timed: self.timed, ..ObsRegistry::default() };
        for i in 0..N_COUNTERS {
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..N_SPANS {
            out.spans[i].count = self.spans[i].count.saturating_sub(earlier.spans[i].count);
            out.spans[i].micros = self.spans[i].micros.saturating_sub(earlier.spans[i].micros);
        }
        out
    }

    /// Renders the standard two-line batch footer from the registry —
    /// the single formatter behind the CLI, suite, and bench `batch`
    /// footers. Line 1 is the batch summary, line 2 the `meta:` kernel
    /// counters (see [`render_meta_line`]).
    pub fn render(&self) -> String {
        let queries = self.get(Counter::Queries);
        let wall = self.get(Counter::WallMicros).max(1);
        let qps = queries as f64 * 1e6 / wall as f64;
        let (hits, misses) = (self.get(Counter::CacheHits), self.get(Counter::CacheMisses));
        let lookups = hits + misses;
        let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        format!(
            "{} queries, jobs={}: {:.1} q/s, cache {}/{} hits ({:.1}%), {} forward runs saved, \
             faults={} deadlines={} escalations={} retries={} resumed={} degradations={} shed={} \
             injected={} io_injected={} watchdog={} contention={}µs solver={}µs\n{}",
            queries,
            self.get(Counter::Jobs),
            qps,
            hits,
            lookups,
            rate * 100.0,
            hits,
            self.get(Counter::EngineFaults),
            self.get(Counter::DeadlineExceeded),
            self.get(Counter::Escalations),
            self.get(Counter::Retries),
            self.get(Counter::Resumed),
            self.get(Counter::Degradations),
            self.get(Counter::Shed),
            self.get(Counter::FaultsInjected),
            self.get(Counter::IoFaults),
            self.get(Counter::WatchdogFired),
            self.get(Counter::LockWaitMicros),
            self.get(Counter::SolverMicros),
            render_meta_line(
                self.get(Counter::CubesBuilt),
                self.get(Counter::WpHits),
                self.get(Counter::WpHits) + self.get(Counter::WpMisses),
                self.get(Counter::SubsumptionFastRejects),
                self.get(Counter::SubsumptionChecks),
                self.get(Counter::ApproxDrops),
                self.get(Counter::MetaMicros),
            ),
        )
    }

    /// Renders the per-span metrics table (the CLI's `--metrics`): one
    /// line per span kind with count, total, mean, max, and the latency
    /// histogram (only non-empty buckets, as `<=Nµs:count`).
    pub fn render_spans(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            let kind = match i {
                0 => "solver",
                1 => "forward",
                2 => "backward",
                3 => "approx",
                4 => "viable",
                _ => unreachable!(),
            };
            let _ = write!(
                out,
                "span {kind:<8} count={} total={}µs mean={:.1}µs max={}µs",
                s.count,
                s.micros,
                s.mean_micros(),
                s.max_micros
            );
            let mut hist = String::new();
            for (b, &n) in s.hist.iter().enumerate() {
                if n > 0 {
                    let hi = if b == 0 { 0 } else { (1u64 << b) - 1 };
                    let _ = write!(hist, " <={hi}µs:{n}");
                }
            }
            if !hist.is_empty() {
                let _ = write!(out, " hist{hist}");
            }
            out.push('\n');
        }
        let _ = write!(out, "solver nodes: {}", self.get(Counter::SolverNodes));
        out
    }
}

/// Renders the frozen `meta:` footer line from the seven meta-kernel
/// counters. [`ObsRegistry::render`] and the `MetaStats` `Display` impl
/// both delegate here, so the format lives in exactly one place.
pub fn render_meta_line(
    cubes_built: u64,
    wp_hits: u64,
    wp_lookups: u64,
    fast_rejects: u64,
    checks: u64,
    drops: u64,
    micros: u64,
) -> String {
    format!(
        "meta: {cubes_built} cubes, wp {wp_hits}/{wp_lookups} memo hits, \
         subsumption {fast_rejects}/{checks} fast-rejected, {drops} drops, {micros}µs"
    )
}

// ---- trace events ----

/// One structured trace event.
///
/// Events carry only deterministic data (no wall-clock readings), so a
/// seeded run emits a byte-identical stream regardless of machine or
/// worker count. `query` is the query's index within its batch; `iter`
/// is the 0-based CEGAR iteration within that query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The DPLL solver produced a candidate abstraction; a new CEGAR
    /// iteration begins.
    IterationStart {
        /// Batch index of the query.
        query: u64,
        /// 0-based iteration within the query.
        iter: u64,
    },
    /// The candidate abstraction chosen by the minimum-cost solve.
    ParamChosen {
        /// Batch index of the query.
        query: u64,
        /// 0-based iteration within the query.
        iter: u64,
        /// Cost (size) of the chosen abstraction.
        cost: u64,
        /// Solver assignment as a `0`/`1` bitstring, atom order.
        param: String,
    },
    /// The forward RHS run converged.
    ForwardDone {
        /// Batch index of the query.
        query: u64,
        /// 0-based iteration within the query.
        iter: u64,
        /// Dataflow facts in the converged solution.
        facts: u64,
    },
    /// The backward meta-analysis finished for this iteration.
    MetaDone {
        /// Batch index of the query.
        query: u64,
        /// 0-based iteration within the query.
        iter: u64,
        /// Cubes built during this iteration's backward run.
        cubes: u64,
        /// wp-memo hits this iteration.
        wp_hits: u64,
        /// wp-memo misses this iteration.
        wp_misses: u64,
    },
    /// Cubes dropped by `approx`/`drop_k` pruning this iteration.
    Pruned {
        /// Batch index of the query.
        query: u64,
        /// 0-based iteration within the query.
        iter: u64,
        /// Cubes dropped.
        cubes: u64,
    },
    /// The query reached a final outcome.
    QueryResolved {
        /// Batch index of the query.
        query: u64,
        /// Outcome tag: `proven`, `impossible`, `iteration_budget`,
        /// `too_big`, `meta_failure`, `deadline`, `engine_fault`, or
        /// `mem_budget`.
        outcome: String,
        /// Total CEGAR iterations the query took.
        iterations: u64,
    },
}

impl Event {
    /// Encodes the event as one JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Event::IterationStart { query, iter } => {
                format!("{{\"ev\":\"iteration_start\",\"query\":{query},\"iter\":{iter}}}")
            }
            Event::ParamChosen { query, iter, cost, param } => format!(
                "{{\"ev\":\"param_chosen\",\"query\":{query},\"iter\":{iter},\"cost\":{cost},\
                 \"param\":\"{}\"}}",
                json_escape(param)
            ),
            Event::ForwardDone { query, iter, facts } => format!(
                "{{\"ev\":\"forward_done\",\"query\":{query},\"iter\":{iter},\"facts\":{facts}}}"
            ),
            Event::MetaDone { query, iter, cubes, wp_hits, wp_misses } => format!(
                "{{\"ev\":\"meta_done\",\"query\":{query},\"iter\":{iter},\"cubes\":{cubes},\
                 \"wp_hits\":{wp_hits},\"wp_misses\":{wp_misses}}}"
            ),
            Event::Pruned { query, iter, cubes } => format!(
                "{{\"ev\":\"pruned\",\"query\":{query},\"iter\":{iter},\"cubes\":{cubes}}}"
            ),
            Event::QueryResolved { query, outcome, iterations } => format!(
                "{{\"ev\":\"query_resolved\",\"query\":{query},\"outcome\":\"{}\",\
                 \"iterations\":{iterations}}}",
                json_escape(outcome)
            ),
        }
    }

    /// Decodes one JSONL line produced by [`Event::encode`].
    pub fn decode(line: &str) -> Option<Event> {
        let fields = parse_json_line(line)?;
        let num = |k: &str| fields.get(k).and_then(|v| v.parse::<u64>().ok());
        let ev = match fields.get("ev")?.as_str() {
            "iteration_start" => {
                Event::IterationStart { query: num("query")?, iter: num("iter")? }
            }
            "param_chosen" => Event::ParamChosen {
                query: num("query")?,
                iter: num("iter")?,
                cost: num("cost")?,
                param: fields.get("param")?.clone(),
            },
            "forward_done" => Event::ForwardDone {
                query: num("query")?,
                iter: num("iter")?,
                facts: num("facts")?,
            },
            "meta_done" => Event::MetaDone {
                query: num("query")?,
                iter: num("iter")?,
                cubes: num("cubes")?,
                wp_hits: num("wp_hits")?,
                wp_misses: num("wp_misses")?,
            },
            "pruned" => Event::Pruned { query: num("query")?, iter: num("iter")?, cubes: num("cubes")? },
            "query_resolved" => Event::QueryResolved {
                query: num("query")?,
                outcome: fields.get("outcome")?.clone(),
                iterations: num("iterations")?,
            },
            _ => return None,
        };
        Some(ev)
    }
}

/// Parses a whole JSONL trace, strictly: every line must decode.
///
/// # Errors
///
/// The 1-based number of the first undecodable line.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, usize> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match Event::decode(line) {
            Some(ev) => out.push(ev),
            None => return Err(i + 1),
        }
    }
    Ok(out)
}

/// Parses a JSONL trace tolerating a **torn final line** — the signature
/// of a process killed mid-write, mirroring the checkpoint reader. An
/// undecodable line anywhere else is still an error.
///
/// # Errors
///
/// The 1-based number of the first undecodable non-final line.
pub fn recover_trace(text: &str) -> Result<Vec<Event>, usize> {
    let lines: Vec<&str> = text.lines().collect();
    let last = lines.len().saturating_sub(1);
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        match Event::decode(line) {
            Some(ev) => out.push(ev),
            None if i == last => {}
            None => return Err(i + 1),
        }
    }
    Ok(out)
}

// ---- sinks ----

/// Where trace events go. Implementations must be thread-safe: the batch
/// scheduler drains per-query buffers through one shared sink.
pub trait TraceSink: Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every event; all methods compile to no-ops.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn emit(&self, _event: &Event) {}
}

/// Writes events as JSONL lines to a buffered file.
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncates) the trace file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: &Path) -> std::io::Result<FileSink> {
        Ok(FileSink { writer: Mutex::new(BufWriter::new(File::create(path)?)) })
    }
}

impl TraceSink for FileSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Trace output is best-effort: a full disk must not abort the
        // analysis itself.
        let _ = writeln!(w, "{}", event.encode());
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
    }
}

/// Records events in memory, for tests and golden traces.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// A copy of everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Drains the recording.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl TraceSink for Recorder {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Event> {
        vec![
            Event::IterationStart { query: 3, iter: 0 },
            Event::ParamChosen { query: 3, iter: 0, cost: 2, param: "0101".into() },
            Event::ForwardDone { query: 3, iter: 0, facts: 812 },
            Event::MetaDone { query: 3, iter: 0, cubes: 44, wp_hits: 12, wp_misses: 3 },
            Event::Pruned { query: 3, iter: 0, cubes: 7 },
            Event::QueryResolved { query: 3, outcome: "proven".into(), iterations: 1 },
        ]
    }

    #[test]
    fn every_event_variant_round_trips() {
        for ev in all_variants() {
            let line = ev.encode();
            assert_eq!(Event::decode(&line).as_ref(), Some(&ev), "line {line}");
            // Re-encoding the decoded event reproduces the bytes.
            assert_eq!(Event::decode(&line).unwrap().encode(), line);
        }
    }

    #[test]
    fn escaped_payloads_survive() {
        let ev = Event::QueryResolved {
            query: 0,
            outcome: "fault: \"boom\"\nline2".into(),
            iterations: 0,
        };
        assert_eq!(Event::decode(&ev.encode()), Some(ev));
    }

    #[test]
    fn decode_rejects_unknown_and_partial() {
        assert_eq!(Event::decode("{\"ev\":\"nope\",\"query\":1}"), None);
        assert_eq!(Event::decode("{\"ev\":\"iteration_start\",\"query\":1}"), None);
        assert_eq!(Event::decode("{\"query\":1,\"iter\":0}"), None);
        assert_eq!(Event::decode("garbage"), None);
    }

    #[test]
    fn parse_trace_is_strict_but_recover_drops_torn_tail() {
        let mut text = String::new();
        for ev in all_variants() {
            text.push_str(&ev.encode());
            text.push('\n');
        }
        let full = parse_trace(&text).unwrap();
        assert_eq!(full, all_variants());

        // Tear the final line mid-write.
        let torn = &text[..text.len() - 10];
        assert!(parse_trace(torn).is_err());
        let recovered = recover_trace(torn).unwrap();
        assert_eq!(recovered, all_variants()[..all_variants().len() - 1]);

        // Corruption in the middle is an error either way, with the right
        // line number.
        let mut bad = text.clone();
        bad.insert_str(bad.find('\n').unwrap() + 1, "corrupt\n");
        assert_eq!(parse_trace(&bad), Err(2));
        assert_eq!(recover_trace(&bad), Err(2));
    }

    #[test]
    fn null_sink_discards_and_recorder_keeps_order(){
        let null = NullSink;
        let rec = Recorder::new();
        for ev in all_variants() {
            null.emit(&ev);
            rec.emit(&ev);
        }
        null.flush();
        assert_eq!(rec.events(), all_variants());
        assert_eq!(rec.take(), all_variants());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn file_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!("pda-obs-{}.jsonl", std::process::id()));
        let sink = FileSink::create(&path).unwrap();
        for ev in all_variants() {
            sink.emit(&ev);
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_trace(&text).unwrap(), all_variants());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn untimed_spans_count_without_clock_data() {
        let mut reg = ObsRegistry::new();
        let s = Span::enter(&reg, SpanKind::Solver);
        s.exit(&mut reg);
        {
            let _g = reg.span(SpanKind::Forward);
        }
        assert_eq!(reg.span_stats(SpanKind::Solver).count, 1);
        assert_eq!(reg.span_stats(SpanKind::Solver).micros, 0);
        assert_eq!(reg.span_stats(SpanKind::Forward).count, 1);
        assert_eq!(reg.span_stats(SpanKind::Forward).hist, [0; N_HIST_BUCKETS]);
    }

    #[test]
    fn timed_spans_fill_the_histogram() {
        let mut reg = ObsRegistry::new();
        reg.set_timed(true);
        let s = Span::enter(&reg, SpanKind::Backward);
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.exit(&mut reg);
        let st = reg.span_stats(SpanKind::Backward);
        assert_eq!(st.count, 1);
        assert!(st.micros >= 1_000, "slept 2ms but recorded {}µs", st.micros);
        assert_eq!(st.max_micros, st.micros);
        assert_eq!(st.hist.iter().sum::<u64>(), 1);
        assert!(reg.render_spans().contains("span backward count=1 total="));
    }

    #[test]
    fn merge_and_since_are_inverse_on_counters() {
        let mut a = ObsRegistry::new();
        a.add(Counter::CubesBuilt, 10);
        a.inc(Counter::Iterations);
        let snapshot = a.clone();
        a.add(Counter::CubesBuilt, 5);
        a.add(Counter::WpHits, 3);
        let delta = a.since(&snapshot);
        assert_eq!(delta.get(Counter::CubesBuilt), 5);
        assert_eq!(delta.get(Counter::WpHits), 3);
        assert_eq!(delta.get(Counter::Iterations), 0);
        let mut b = snapshot.clone();
        b.merge(&delta);
        assert_eq!(b, a);
    }

    #[test]
    fn render_matches_frozen_batch_footer_shape() {
        let mut reg = ObsRegistry::new();
        reg.set(Counter::Queries, 32);
        reg.set(Counter::Jobs, 8);
        reg.set(Counter::WallMicros, 2_000_000);
        reg.set(Counter::CacheHits, 57);
        reg.set(Counter::CacheMisses, 32);
        reg.set(Counter::Escalations, 1);
        reg.set(Counter::CubesBuilt, 7);
        reg.set(Counter::WpHits, 3);
        reg.set(Counter::WpMisses, 1);
        reg.set(Counter::SubsumptionChecks, 9);
        reg.set(Counter::ApproxDrops, 2);
        reg.set(Counter::MetaMicros, 15);
        reg.set(Counter::Degradations, 3);
        reg.set(Counter::Shed, 2);
        reg.set(Counter::Retries, 4);
        reg.set(Counter::LockWaitMicros, 11);
        reg.set(Counter::SolverMicros, 21);
        reg.set(Counter::FaultsInjected, 6);
        reg.set(Counter::IoFaults, 2);
        reg.set(Counter::WatchdogFired, 1);
        assert_eq!(
            reg.render(),
            "32 queries, jobs=8: 16.0 q/s, cache 57/89 hits (64.0%), 57 forward runs saved, \
             faults=0 deadlines=0 escalations=1 retries=4 resumed=0 degradations=3 shed=2 \
             injected=6 io_injected=2 watchdog=1 contention=11µs solver=21µs\n\
             meta: 7 cubes, wp 3/4 memo hits, subsumption 0/9 fast-rejected, 2 drops, 15µs"
        );
    }

    #[test]
    fn hist_buckets_are_powers_of_two() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(u64::MAX), N_HIST_BUCKETS - 1);
    }
}
