//! DNF conversion and the under-approximation operator of Figure 8:
//! `toDNF`, `simplify`, and the `drop_k` beam.

use crate::formula::{Cube, Dnf, Formula, Lit, Primitive};
use pda_util::{Counter, ObsRegistry};

/// Configuration of the under-approximation beam.
#[derive(Debug, Clone, Copy)]
pub struct BeamConfig {
    /// Maximum number of DNF disjuncts retained by `drop_k` (the paper's
    /// `k`; the evaluation found `k = 5` optimal, Figure 13).
    pub k: usize,
    /// Hard cap on intermediate cube counts during DNF conversion; on
    /// overflow an emergency `drop_k` runs early. Keeps Figure 6(a)-style
    /// blowup bounded even before the per-step `approx`.
    pub max_cubes: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig { k: 5, max_cubes: 2048 }
    }
}

impl BeamConfig {
    /// A beam of width `k` with the default intermediate cap.
    pub fn with_k(k: usize) -> Self {
        BeamConfig { k, ..BeamConfig::default() }
    }

    /// Effectively disables under-approximation (the paper's Figure 6(a)
    /// mode); useful for tests and the ablation bench.
    pub fn exhaustive() -> Self {
        BeamConfig { k: usize::MAX, max_cubes: 1 << 20 }
    }
}

/// Converts a formula to DNF, pruning syntactically unsatisfiable cubes.
///
/// `keep` is consulted on overflow of `cfg.max_cubes`: cubes are then
/// beam-pruned early, always retaining a cube satisfying `keep` if one
/// exists (emergency under-approximation — sound for the meta-analysis,
/// which only ever needs σ(result) ⊆ σ(input) plus membership of the
/// current `(p, d)`).
pub fn to_dnf<P: Primitive>(
    f: &Formula<P>,
    cfg: &BeamConfig,
    keep: &dyn Fn(&Cube<P>) -> bool,
) -> Dnf<P> {
    to_dnf_obs(f, cfg, keep, &mut ObsRegistry::default())
}

/// [`to_dnf`] with effort counters: cubes materialized and emergency
/// drops are recorded into `obs` (the tree kernel's analogue of the
/// interned kernel's built-in counting).
pub fn to_dnf_obs<P: Primitive>(
    f: &Formula<P>,
    cfg: &BeamConfig,
    keep: &dyn Fn(&Cube<P>) -> bool,
    obs: &mut ObsRegistry,
) -> Dnf<P> {
    let cubes = nnf_dnf(f, true, cfg, keep, obs);
    Dnf(cubes)
}

/// Core NNF + distribution. `sign` tracks negation context.
fn nnf_dnf<P: Primitive>(
    f: &Formula<P>,
    sign: bool,
    cfg: &BeamConfig,
    keep: &dyn Fn(&Cube<P>) -> bool,
    obs: &mut ObsRegistry,
) -> Vec<Cube<P>> {
    match (f, sign) {
        (Formula::True, true) | (Formula::False, false) => vec![Cube::top()],
        (Formula::True, false) | (Formula::False, true) => Vec::new(),
        (Formula::Prim(p), pos) => {
            let mut c = Cube::top();
            let ok = c.insert(Lit { prim: p.clone(), pos });
            debug_assert!(ok);
            obs.inc(Counter::CubesBuilt);
            vec![c]
        }
        (Formula::Not(inner), s) => nnf_dnf(inner, !s, cfg, keep, obs),
        (Formula::And(fs), true) | (Formula::Or(fs), false) => {
            // Conjunction: distribute pairwise.
            let mut acc = vec![Cube::top()];
            for g in fs {
                let gs = nnf_dnf(g, sign, cfg, keep, obs);
                acc = product(&acc, &gs, cfg, keep, obs);
                if acc.is_empty() {
                    return acc;
                }
            }
            acc
        }
        (Formula::Or(fs), true) | (Formula::And(fs), false) => {
            let mut acc: Vec<Cube<P>> = Vec::new();
            for g in fs {
                acc.extend(nnf_dnf(g, sign, cfg, keep, obs));
                if acc.len() > cfg.max_cubes {
                    acc = emergency_prune(acc, cfg, keep, obs);
                }
            }
            acc
        }
    }
}

fn product<P: Primitive>(
    xs: &[Cube<P>],
    ys: &[Cube<P>],
    cfg: &BeamConfig,
    keep: &dyn Fn(&Cube<P>) -> bool,
    obs: &mut ObsRegistry,
) -> Vec<Cube<P>> {
    let mut out =
        Vec::with_capacity(xs.len().saturating_mul(ys.len()).min(cfg.max_cubes.saturating_add(1)));
    for x in xs {
        for y in ys {
            if let Some(c) = x.conjoin(y) {
                out.push(c);
                obs.inc(Counter::CubesBuilt);
            }
        }
        // Prune once per outer cube, not per push: pruning inside the
        // inner loop re-sorted the whole accumulator on every overflow,
        // going quadratic in `max_cubes` on Figure 6(a)-style blowup.
        if out.len() > cfg.max_cubes {
            out = emergency_prune(out, cfg, keep, obs);
        }
    }
    out
}

/// Under-approximate on intermediate overflow: dedupe, keep the smallest
/// `max_cubes / 2` cubes plus the smallest `keep`-satisfying cube.
fn emergency_prune<P: Primitive>(
    mut cubes: Vec<Cube<P>>,
    cfg: &BeamConfig,
    keep: &dyn Fn(&Cube<P>) -> bool,
    obs: &mut ObsRegistry,
) -> Vec<Cube<P>> {
    // One length-lexicographic sort serves both dedup (equal cubes have
    // equal length, hence stay adjacent) and the size-ordered cut below.
    cubes.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    cubes.dedup();
    if cubes.len() <= cfg.max_cubes {
        return cubes;
    }
    let cut = cfg.max_cubes / 2;
    let mut out: Vec<Cube<P>> = cubes[..cut].to_vec();
    if !out.iter().any(keep) {
        // Size-sorted, so the first match past the cut is the *smallest*
        // keep-satisfying cube — mirroring `approx`'s drop_k rule.
        if let Some(c) = cubes[cut..].iter().find(|c| keep(c)) {
            out.push(c.clone());
        }
    }
    obs.add(Counter::ApproxDrops, (cubes.len() - out.len()) as u64);
    out
}

/// The paper's `simplify` (Figure 8): sort disjuncts by size and drop any
/// disjunct that implies an earlier (hence no-larger) one — semantics
/// preserving, since the implied disjunct covers it.
pub fn simplify<P: Primitive>(dnf: Dnf<P>) -> Dnf<P> {
    simplify_obs(dnf, &mut ObsRegistry::default())
}

/// [`simplify`] with effort counters: every subsumption (`implies`)
/// check is recorded into `obs`.
pub fn simplify_obs<P: Primitive>(dnf: Dnf<P>, obs: &mut ObsRegistry) -> Dnf<P> {
    let mut cubes = dnf.0;
    cubes.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    cubes.dedup();
    let mut kept: Vec<Cube<P>> = Vec::new();
    for c in cubes {
        let mut checks = 0u64;
        let subsumed = kept.iter().any(|k| {
            checks += 1;
            c.implies(k)
        });
        obs.add(Counter::SubsumptionChecks, checks);
        if !subsumed {
            kept.push(c);
        }
    }
    Dnf(kept)
}

/// The paper's `approx` for disjunctive meta-analyses (Section 4.1):
/// `simplify ∘ toDNF`, then `drop_k` if more than `k` disjuncts remain —
/// keep the `k−1` smallest plus the smallest disjunct containing the
/// current `(p, d)`.
///
/// Returns `None` if no disjunct contains `(p, d)`; Theorem 3 guarantees
/// this cannot happen when the driver maintains its invariant, so the
/// caller treats `None` as an internal soundness error.
pub fn approx<P: Primitive>(
    p: &P::Param,
    d: &P::State,
    dnf: Dnf<P>,
    cfg: &BeamConfig,
) -> Option<Dnf<P>> {
    approx_obs(p, d, dnf, cfg, &mut ObsRegistry::default())
}

/// [`approx`] with effort counters: subsumption checks (via
/// `simplify`) and `drop_k` drops are recorded into `obs`.
pub fn approx_obs<P: Primitive>(
    p: &P::Param,
    d: &P::State,
    dnf: Dnf<P>,
    cfg: &BeamConfig,
    obs: &mut ObsRegistry,
) -> Option<Dnf<P>> {
    let simplified = simplify_obs(dnf, obs);
    if !simplified.holds(p, d) {
        return None;
    }
    if simplified.len() <= cfg.k {
        return Some(simplified);
    }
    let cubes = simplified.0;
    let take = cfg.k.saturating_sub(1);
    let mut out: Vec<Cube<P>> = cubes.iter().take(take).cloned().collect();
    if !out.iter().any(|c| c.holds(p, d)) {
        let j = cubes.iter().find(|c| c.holds(p, d))?;
        out.push(j.clone());
    }
    obs.add(Counter::ApproxDrops, (cubes.len() - out.len()) as u64);
    Some(Dnf(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt;

    /// Test primitive: `Bit(i)` holds iff bit `i` of the state is set;
    /// `PBit(i)` holds iff bit `i` of the param is set.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum BP {
        Bit(u8),
        PBit(u8),
    }

    impl fmt::Display for BP {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                BP::Bit(i) => write!(f, "d{i}"),
                BP::PBit(i) => write!(f, "p{i}"),
            }
        }
    }

    impl Primitive for BP {
        type Param = u32;
        type State = u32;
        fn holds(&self, p: &u32, d: &u32) -> bool {
            match self {
                BP::Bit(i) => (d >> i) & 1 == 1,
                BP::PBit(i) => (p >> i) & 1 == 1,
            }
        }
        fn eval_state(&self, d: &u32) -> Option<bool> {
            match self {
                BP::Bit(i) => Some((d >> i) & 1 == 1),
                BP::PBit(_) => None,
            }
        }
        fn param_atom(&self) -> Option<(usize, bool)> {
            match self {
                BP::Bit(_) => None,
                BP::PBit(i) => Some((*i as usize, true)),
            }
        }
    }

    fn lit(p: BP, pos: bool) -> Formula<BP> {
        if pos {
            Formula::prim(p)
        } else {
            Formula::nprim(p)
        }
    }

    /// Brute-force semantic equality over 4 state bits and 2 param bits.
    fn semantically_equal(f: &Formula<BP>, g: &Dnf<BP>) -> bool {
        for p in 0..4u32 {
            for d in 0..16u32 {
                if f.holds(&p, &d) != g.holds(&p, &d) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn to_dnf_preserves_semantics() {
        use Formula as F;
        let cases = vec![
            lit(BP::Bit(0), true),
            F::not(F::and(vec![lit(BP::Bit(0), true), lit(BP::Bit(1), true)])),
            F::and(vec![
                F::or(vec![lit(BP::Bit(0), true), lit(BP::PBit(0), false)]),
                F::or(vec![lit(BP::Bit(1), true), lit(BP::Bit(2), false)]),
            ]),
            F::not(F::or(vec![
                F::and(vec![lit(BP::Bit(0), true), lit(BP::Bit(1), false)]),
                lit(BP::PBit(1), true),
            ])),
            F::True,
            F::False,
        ];
        let cfg = BeamConfig::exhaustive();
        for f in cases {
            let dnf = to_dnf(&f, &cfg, &|_| true);
            assert!(semantically_equal(&f, &dnf), "mismatch for {f}");
        }
    }

    #[test]
    fn contradictory_cubes_pruned() {
        let f = Formula::and(vec![lit(BP::Bit(0), true), lit(BP::Bit(0), false)]);
        let dnf = to_dnf(&f, &BeamConfig::default(), &|_| true);
        assert!(dnf.is_empty());
    }

    #[test]
    fn simplify_drops_subsumed() {
        // (d0) ∨ (d0 ∧ d1) simplifies to (d0).
        let f = Formula::or(vec![
            lit(BP::Bit(0), true),
            Formula::and(vec![lit(BP::Bit(0), true), lit(BP::Bit(1), true)]),
        ]);
        let dnf = simplify(to_dnf(&f, &BeamConfig::exhaustive(), &|_| true));
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf.0[0].len(), 1);
    }

    #[test]
    fn simplify_is_semantics_preserving() {
        let f = Formula::or(vec![
            Formula::and(vec![lit(BP::Bit(0), true), lit(BP::Bit(1), true)]),
            lit(BP::Bit(1), true),
            Formula::and(vec![lit(BP::Bit(2), false), lit(BP::Bit(1), true)]),
        ]);
        let dnf = to_dnf(&f, &BeamConfig::exhaustive(), &|_| true);
        let simplified = simplify(dnf);
        assert!(semantically_equal(&f, &simplified));
    }

    #[test]
    fn approx_respects_k_and_membership() {
        // Three incomparable cubes; (p, d) = (0, 0b100) satisfies only the
        // largest one (sorted last).
        let f = Formula::or(vec![
            lit(BP::Bit(0), true),
            lit(BP::Bit(1), true),
            Formula::and(vec![lit(BP::Bit(2), true), lit(BP::Bit(3), false)]),
        ]);
        let dnf = to_dnf(&f, &BeamConfig::exhaustive(), &|_| true);
        let cfg = BeamConfig::with_k(1);
        let out = approx::<BP>(&0, &0b100, dnf, &cfg).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.holds(&0, &0b100));
        // Under-approximation: σ(out) ⊆ σ(f).
        for p in 0..4u32 {
            for d in 0..16u32 {
                if out.holds(&p, &d) {
                    assert!(f.holds(&p, &d));
                }
            }
        }
    }

    #[test]
    fn approx_fails_without_membership() {
        let f = lit(BP::Bit(0), true);
        let dnf = to_dnf(&f, &BeamConfig::exhaustive(), &|_| true);
        assert!(approx::<BP>(&0, &0, dnf, &BeamConfig::default()).is_none());
    }

    #[test]
    fn emergency_prune_keeps_membership() {
        // Build a big disjunction exceeding a tiny max_cubes; the cube
        // containing (p, d) must survive.
        let mut parts = Vec::new();
        for i in 0..4u8 {
            for j in 0..4u8 {
                parts.push(Formula::and(vec![lit(BP::Bit(i), true), lit(BP::Bit(j), true)]));
            }
        }
        // (p, d) with only bit 3: satisfied only by the (d3 ∧ d3) cube.
        let d: u32 = 0b1000;
        let f = Formula::or(parts);
        let cfg = BeamConfig { k: 2, max_cubes: 4 };
        let keep = |c: &Cube<BP>| c.holds(&0u32, &d);
        let dnf = to_dnf(&f, &cfg, &keep);
        assert!(dnf.holds(&0, &d));
        let out = approx::<BP>(&0, &d, dnf, &cfg).unwrap();
        assert!(out.holds(&0, &d));
        assert!(out.len() <= 2);
    }
}
