//! The backward meta-analysis of the paper's Section 4.
//!
//! When the forward analysis instantiated at abstraction `p` fails to prove
//! a query, TRACER hands this crate an abstract counterexample trace `t`
//! (a sequence of atomic commands), the abstraction `p`, and the initial
//! abstract state `d_I`. The meta-analysis walks `t` *backward*, tracking a
//! formula `f ∈ M` over primitives that talk about **both** the forward
//! analysis's abstract state `d` and the abstraction `p` — a sufficient
//! condition for the forward analysis to fail. Its guarantees (Theorem 3):
//!
//! 1. if `(p, F_p[t](d)) ∈ σ(f)` then `(p, d) ∈ σ(B[t](p, d, f))` — the
//!    current failure is retained, so each CEGAR iteration eliminates at
//!    least the abstraction it just tried; and
//! 2. every `(p₀, d₀) ∈ σ(B[t](p, d, f))` satisfies
//!    `(p₀, F_{p₀}[t](d₀)) ∈ σ(f)` — everything eliminated really does
//!    fail, so pruning never discards a viable abstraction.
//!
//! The implementation follows the paper's *disjunctive meta-analysis*
//! recipe (Section 4.1):
//!
//! * [`Formula`] over a client-supplied [`Primitive`] type;
//! * weakest preconditions are given per primitive ([`MetaClient::wp_prim`])
//!   and extended homomorphically over `¬/∧/∨` — exact because every
//!   forward transfer is a total deterministic function of `(p, d)`
//!   (requirement (2) of the framework);
//! * formulas are kept in DNF ([`Dnf`]) and under-approximated by
//!   [`approx()`]: `simplify` drops subsumed disjuncts, and `drop_k`
//!   (Figure 8) beam-searches down to `k` disjuncts while always keeping a
//!   disjunct containing the current `(p, d)` — whose existence Theorem 3
//!   guarantees and this implementation checks at runtime.
//!
//! The driver [`backward::analyze_trace`] is the `B[t]` of Figure 7;
//! [`backward::restrict`] evaluates the resulting trace-entry formula at
//! `d_I`, leaving a pure parameter formula — the set of unviable
//! abstractions handed to `pda-solver`.
//!
//! Two kernels implement that walk. The tree kernel above is the
//! reference semantics; [`interned::analyze_trace_interned`] is the
//! production hot path — it lowers the client's tree formulas once per
//! trace into interned primitives, packed-literal cubes with subsumption
//! signatures, and a per-trace wp memo, and is bit-identical to the tree
//! kernel by construction (see the module docs of [`interned`]).

#![warn(missing_docs)]

pub mod approx;
pub mod backward;
pub mod formula;
pub mod interned;
pub mod stats;

pub use approx::{approx, approx_obs, simplify, simplify_obs, to_dnf_obs, BeamConfig};
pub use backward::{analyze_trace, analyze_trace_obs, check_wp_exact, restrict, MetaClient, MetaError};
pub use formula::{Cube, Dnf, Formula, Lit, Primitive};
pub use interned::{
    analyze_trace_interned, analyze_trace_interned_jobs, InternCache, TraceAnalysis, WarmStore,
};
pub use stats::MetaStats;
