//! Effort counters for the backward meta-analysis kernel.

use pda_util::{Counter, ObsRegistry};
use std::fmt;

/// Counter block for the backward/meta hot path, filled by the interned
/// kernel ([`crate::interned::analyze_trace_interned`]) and threaded by
/// the driver through `IterationLog`/`QueryResult`/`BatchStats` so the
/// effect of the packed representation is observable, not asserted.
///
/// All counters are cumulative and merge by addition; `micros` is the
/// wall-clock time the driver spent inside the backward phase (trace
/// replay + wp + approx + restrict), which is the quantity the perf
/// acceptance criterion compares across kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MetaStats {
    /// Cubes materialized by DNF distribution (`product` conjunctions).
    pub cubes_built: u64,
    /// Cube-subsumption tests performed by `simplify`.
    pub subsumption_checks: u64,
    /// Subsumption tests rejected by the 64-bit occurrence signature
    /// alone, without touching literals.
    pub subsumption_fast_rejects: u64,
    /// Weakest-precondition DNF conversions served from the per-trace
    /// `(atom, primitive)` memo.
    pub wp_hits: u64,
    /// Weakest-precondition DNF conversions computed fresh.
    pub wp_misses: u64,
    /// Cubes dropped by `approx`'s beam and by emergency pruning.
    pub approx_drops: u64,
    /// wp-memo entries evicted (and intern caches reset) by the memory
    /// governor under pressure.
    pub mem_evictions: u64,
    /// Wall-clock time spent in the backward/meta phase, microseconds.
    pub micros: u64,
}

impl MetaStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &MetaStats) {
        self.cubes_built += other.cubes_built;
        self.subsumption_checks += other.subsumption_checks;
        self.subsumption_fast_rejects += other.subsumption_fast_rejects;
        self.wp_hits += other.wp_hits;
        self.wp_misses += other.wp_misses;
        self.approx_drops += other.approx_drops;
        self.mem_evictions += other.mem_evictions;
        self.micros += other.micros;
    }

    /// The counter delta accumulated since `earlier` (a snapshot of the
    /// same counter block); saturates rather than underflowing.
    pub fn since(&self, earlier: &MetaStats) -> MetaStats {
        MetaStats {
            cubes_built: self.cubes_built.saturating_sub(earlier.cubes_built),
            subsumption_checks: self
                .subsumption_checks
                .saturating_sub(earlier.subsumption_checks),
            subsumption_fast_rejects: self
                .subsumption_fast_rejects
                .saturating_sub(earlier.subsumption_fast_rejects),
            wp_hits: self.wp_hits.saturating_sub(earlier.wp_hits),
            wp_misses: self.wp_misses.saturating_sub(earlier.wp_misses),
            approx_drops: self.approx_drops.saturating_sub(earlier.approx_drops),
            mem_evictions: self.mem_evictions.saturating_sub(earlier.mem_evictions),
            micros: self.micros.saturating_sub(earlier.micros),
        }
    }

    /// Total wp-memo lookups.
    pub fn wp_lookups(&self) -> u64 {
        self.wp_hits + self.wp_misses
    }

    /// Snapshots the meta-kernel counters out of an [`ObsRegistry`] —
    /// the kernels count into the registry; this view is what rides in
    /// `QueryResult`/`IterationLog`/checkpoint records.
    pub fn from_obs(reg: &ObsRegistry) -> MetaStats {
        MetaStats {
            cubes_built: reg.get(Counter::CubesBuilt),
            subsumption_checks: reg.get(Counter::SubsumptionChecks),
            subsumption_fast_rejects: reg.get(Counter::SubsumptionFastRejects),
            wp_hits: reg.get(Counter::WpHits),
            wp_misses: reg.get(Counter::WpMisses),
            approx_drops: reg.get(Counter::ApproxDrops),
            mem_evictions: reg.get(Counter::MemEvictions),
            micros: reg.get(Counter::MetaMicros),
        }
    }

    /// Writes the counters into an [`ObsRegistry`] (additive).
    pub fn add_to_obs(&self, reg: &mut ObsRegistry) {
        reg.add(Counter::CubesBuilt, self.cubes_built);
        reg.add(Counter::SubsumptionChecks, self.subsumption_checks);
        reg.add(Counter::SubsumptionFastRejects, self.subsumption_fast_rejects);
        reg.add(Counter::WpHits, self.wp_hits);
        reg.add(Counter::WpMisses, self.wp_misses);
        reg.add(Counter::ApproxDrops, self.approx_drops);
        reg.add(Counter::MemEvictions, self.mem_evictions);
        reg.add(Counter::MetaMicros, self.micros);
    }
}

impl fmt::Display for MetaStats {
    /// Compact one-line form used by the batch footer: `meta: 12 cubes,
    /// wp 8/10 memo hits, subsumption 5/20 fast-rejected, 3 drops, 42µs`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One source of truth for the footer format: pda-util::obs.
        f.write_str(&pda_util::obs::render_meta_line(
            self.cubes_built,
            self.wp_hits,
            self.wp_lookups(),
            self.subsumption_fast_rejects,
            self.subsumption_checks,
            self.approx_drops,
            self.micros,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_since_are_inverse() {
        let a = MetaStats {
            cubes_built: 5,
            subsumption_checks: 10,
            subsumption_fast_rejects: 4,
            wp_hits: 7,
            wp_misses: 3,
            approx_drops: 2,
            mem_evictions: 1,
            micros: 100,
        };
        let mut total = a;
        let b = MetaStats { cubes_built: 1, wp_hits: 2, micros: 50, ..MetaStats::default() };
        total.merge(&b);
        assert_eq!(total.since(&a), b);
        assert_eq!(total.wp_lookups(), 12);
    }

    #[test]
    fn display_is_stable() {
        let s = MetaStats {
            cubes_built: 12,
            subsumption_checks: 20,
            subsumption_fast_rejects: 5,
            wp_hits: 8,
            wp_misses: 2,
            approx_drops: 3,
            mem_evictions: 0,
            micros: 42,
        };
        assert_eq!(
            s.to_string(),
            "meta: 12 cubes, wp 8/10 memo hits, subsumption 5/20 fast-rejected, 3 drops, 42µs"
        );
    }
}
