//! The backward driver `B[t]` (Figure 7) and the restriction of its result
//! to a parameter formula.

use crate::approx::{approx_obs, to_dnf_obs, BeamConfig};
use crate::formula::{Cube, Dnf, Formula, Primitive};
use pda_lang::Atom;
use pda_solver::PFormula;
use pda_util::{ObsRegistry, Span, SpanKind};
use std::fmt;

/// Convenience alias: the parameter type of a [`MetaClient`].
pub type ParamOf<C> = <<C as MetaClient>::Prim as Primitive>::Param;
/// Convenience alias: the state type of a [`MetaClient`].
pub type StateOf<C> = <<C as MetaClient>::Prim as Primitive>::State;

/// A client of the backward meta-analysis: the forward transfer functions
/// (used to replay the trace) and per-primitive weakest preconditions.
///
/// # Soundness obligation
///
/// `wp_prim(a, π)` must denote the **exact preimage** of `σ(π)` under the
/// forward transfer (the paper's requirement (2)):
///
/// ```text
/// σ(wp_prim(a, π)) = { (p, d) | (p, ⟦a⟧_p(d)) ∈ σ(π) }
/// ```
///
/// Exactness (not just soundness) is what lets the driver extend wp over
/// negation homomorphically. [`check_wp_exact`] verifies the obligation
/// pointwise and backs the clients' property tests.
pub trait MetaClient {
    /// The primitive formula alphabet of this client's meta-domain.
    type Prim: Primitive;

    /// The forward transfer `⟦atom⟧_p(d)` (must match the client's
    /// `ParametricAnalysis` implementation exactly).
    fn transfer(&self, p: &ParamOf<Self>, atom: &Atom, d: &StateOf<Self>) -> StateOf<Self>;

    /// Weakest precondition of a positive primitive across `atom`.
    fn wp_prim(&self, atom: &Atom, prim: &Self::Prim) -> Formula<Self::Prim>;
}

/// Failures of the backward analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// The `(p, dᵢ)` membership invariant of Theorem 3 broke at trace
    /// index `step` — this indicates a wp/transfer mismatch in the client
    /// (or a non-counterexample trace) and is surfaced loudly rather than
    /// silently producing unsound prunings.
    MembershipLost {
        /// Index into the trace at which the invariant broke (trace
        /// length = position of the query point).
        step: usize,
    },
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::MembershipLost { step } => {
                write!(f, "meta-analysis membership invariant lost at trace step {step}")
            }
        }
    }
}

impl std::error::Error for MetaError {}

/// Weakest precondition of a whole DNF across one atom.
///
/// Per cube: conjoin the per-literal preconditions (`wp(¬π) = ¬wp(π)` by
/// exactness) and re-normalize; the union over cubes is the result.
/// `keep` guides emergency pruning on blowup.
fn wp_dnf<C: MetaClient>(
    client: &C,
    atom: &Atom,
    dnf: &Dnf<C::Prim>,
    cfg: &BeamConfig,
    keep: &dyn Fn(&Cube<C::Prim>) -> bool,
    obs: &mut ObsRegistry,
) -> Dnf<C::Prim> {
    let mut out: Vec<Cube<C::Prim>> = Vec::new();
    for cube in &dnf.0 {
        let parts: Vec<Formula<C::Prim>> = cube
            .lits()
            .map(|l| {
                let wp = client.wp_prim(atom, &l.prim);
                if l.pos {
                    wp
                } else {
                    Formula::not(wp)
                }
            })
            .collect();
        let f = Formula::and(parts);
        out.extend(to_dnf_obs(&f, cfg, keep, obs).0);
    }
    Dnf(out)
}

/// The backward meta-analysis `B[t](p, d_I, not_q)` of Figure 7.
///
/// Replays the forward analysis along `trace` to obtain the intermediate
/// states `d_0 … d_n`, seeds the formula with `not_q` (the weakest
/// condition under which the query fails at the end of the trace), then
/// walks backward applying `wp` and `approx` at every step. The result is
/// a sufficient condition *at the start of the trace* for the forward
/// analysis to fail — over both state and parameter primitives.
///
/// # Errors
///
/// [`MetaError::MembershipLost`] if the Theorem 3 invariant
/// `(p, dᵢ) ∈ σ(fᵢ)` is ever violated, which indicates an unsound client.
pub fn analyze_trace<C: MetaClient>(
    client: &C,
    p: &ParamOf<C>,
    d_init: &StateOf<C>,
    trace: &[Atom],
    not_q: &Formula<C::Prim>,
    cfg: &BeamConfig,
) -> Result<Dnf<C::Prim>, MetaError>
where
    StateOf<C>: Clone,
{
    analyze_trace_obs(client, p, d_init, trace, not_q, cfg, &mut ObsRegistry::default())
}

/// [`analyze_trace`] with observability: kernel effort counters (cubes,
/// subsumption checks, drops) and the `approx` span are recorded into
/// `obs`. The result is identical to [`analyze_trace`]'s.
///
/// # Errors
///
/// Same contract as [`analyze_trace`].
pub fn analyze_trace_obs<C: MetaClient>(
    client: &C,
    p: &ParamOf<C>,
    d_init: &StateOf<C>,
    trace: &[Atom],
    not_q: &Formula<C::Prim>,
    cfg: &BeamConfig,
    obs: &mut ObsRegistry,
) -> Result<Dnf<C::Prim>, MetaError>
where
    StateOf<C>: Clone,
{
    // Replay forward: states[i] arrives before trace[i]; states[n] is final.
    let mut states: Vec<StateOf<C>> = Vec::with_capacity(trace.len() + 1);
    states.push(d_init.clone());
    for a in trace {
        let next = client.transfer(p, a, states.last().unwrap());
        states.push(next);
    }
    let n = trace.len();
    let keep_n = |c: &Cube<C::Prim>| c.holds(p, &states[n]);
    let mut f = to_dnf_obs(not_q, cfg, &keep_n, obs);
    let span = Span::enter(obs, SpanKind::Approx);
    let approxed = approx_obs(p, &states[n], f, cfg, obs);
    span.exit(obs);
    f = approxed.ok_or(MetaError::MembershipLost { step: n })?;
    for i in (0..n).rev() {
        let keep_i = |c: &Cube<C::Prim>| c.holds(p, &states[i]);
        f = wp_dnf(client, &trace[i], &f, cfg, &keep_i, obs);
        let span = Span::enter(obs, SpanKind::Approx);
        let approxed = approx_obs(p, &states[i], f, cfg, obs);
        span.exit(obs);
        f = approxed.ok_or(MetaError::MembershipLost { step: i })?;
    }
    Ok(f)
}

/// Restricts a trace-entry formula to the parameter: evaluates every
/// state primitive at `d_I` and keeps parameter primitives symbolic,
/// yielding the solver formula for the unviable-abstraction set
/// `Φ = { p' | (p', d_I) ∈ σ(f) }` (Algorithm 1, line 14).
pub fn restrict<P: Primitive>(dnf: &Dnf<P>, d_init: &P::State) -> PFormula {
    let mut cubes = Vec::new();
    'cube: for cube in &dnf.0 {
        let mut lits = Vec::new();
        for l in cube.lits() {
            if let Some((atom, polarity)) = l.prim.param_atom() {
                lits.push(PFormula::lit(atom, polarity == l.pos));
            } else {
                match l.prim.eval_state(d_init) {
                    Some(b) if b == l.pos => {} // literal true at d_I
                    Some(_) => continue 'cube,  // cube false at d_I
                    None => {
                        // A primitive depending on both p and d would need
                        // a richer restriction; none of our clients has
                        // one. Dropping the cube under-approximates, which
                        // is sound.
                        debug_assert!(false, "primitive is neither state- nor param-only");
                        continue 'cube;
                    }
                }
            }
        }
        cubes.push(PFormula::and(lits));
    }
    PFormula::or(cubes)
}

/// Checks requirement (2) pointwise: wp of `prim` across `atom` evaluated
/// at `(p, d)` must equal `σ(prim)`-membership of the forward result.
///
/// # Errors
///
/// Returns a human-readable description of the first violated instance;
/// client property tests call this over sampled `(p, d, atom, prim)`.
pub fn check_wp_exact<C: MetaClient>(
    client: &C,
    atom: &Atom,
    prim: &C::Prim,
    p: &ParamOf<C>,
    d: &StateOf<C>,
) -> Result<(), String>
where
    ParamOf<C>: fmt::Debug,
    StateOf<C>: fmt::Debug,
{
    let post = client.transfer(p, atom, d);
    let want = prim.holds(p, &post);
    let wp = client.wp_prim(atom, prim);
    let got = wp.holds(p, d);
    if want == got {
        Ok(())
    } else {
        Err(format!(
            "wp not exact for atom {atom:?}, prim {prim}: \
             transfer({p:?}, {d:?}) = {post:?}, σ-membership {want}, but wp = {wp} evaluates to {got}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::to_dnf;

    /// Toy client over bit-vector states/params.
    ///
    /// * `Null{v}`  — set state bit `v` iff param bit `v` is set.
    /// * `Havoc{v}` — clear state bit `v`.
    /// * `Copy{dst,src}` — state bit `dst` := state bit `src`.
    struct Bits;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum BP {
        Bit(u8),
        PBit(u8),
    }

    impl fmt::Display for BP {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                BP::Bit(i) => write!(f, "d{i}"),
                BP::PBit(i) => write!(f, "p{i}"),
            }
        }
    }

    impl Primitive for BP {
        type Param = u32;
        type State = u32;
        fn holds(&self, p: &u32, d: &u32) -> bool {
            match self {
                BP::Bit(i) => (d >> i) & 1 == 1,
                BP::PBit(i) => (p >> i) & 1 == 1,
            }
        }
        fn eval_state(&self, d: &u32) -> Option<bool> {
            match self {
                BP::Bit(i) => Some((d >> i) & 1 == 1),
                BP::PBit(_) => None,
            }
        }
        fn param_atom(&self) -> Option<(usize, bool)> {
            match self {
                BP::Bit(_) => None,
                BP::PBit(i) => Some((*i as usize, true)),
            }
        }
    }

    impl MetaClient for Bits {
        type Prim = BP;
        fn transfer(&self, p: &u32, atom: &Atom, d: &u32) -> u32 {
            match *atom {
                Atom::Null { dst } => {
                    if (p >> dst.0) & 1 == 1 {
                        d | (1 << dst.0)
                    } else {
                        *d
                    }
                }
                Atom::Havoc { dst } => d & !(1 << dst.0),
                Atom::Copy { dst, src } => {
                    if (d >> src.0) & 1 == 1 {
                        d | (1 << dst.0)
                    } else {
                        d & !(1 << dst.0)
                    }
                }
                _ => *d,
            }
        }
        fn wp_prim(&self, atom: &Atom, prim: &BP) -> Formula<BP> {
            match (*atom, *prim) {
                (Atom::Null { dst }, BP::Bit(i)) if dst.0 == i as u32 => Formula::or(vec![
                    Formula::prim(BP::Bit(i)),
                    Formula::prim(BP::PBit(i)),
                ]),
                (Atom::Havoc { dst }, BP::Bit(i)) if dst.0 == i as u32 => Formula::False,
                (Atom::Copy { dst, src }, BP::Bit(i)) if dst.0 == i as u32 => {
                    Formula::prim(BP::Bit(src.0 as u8))
                }
                (_, other) => Formula::prim(other),
            }
        }
    }

    use pda_lang::VarId;

    fn null(v: u32) -> Atom {
        Atom::Null { dst: VarId(v) }
    }
    fn copy(dst: u32, src: u32) -> Atom {
        Atom::Copy { dst: VarId(dst), src: VarId(src) }
    }

    #[test]
    fn wp_exactness_holds_for_toy_client() {
        let atoms = [null(0), null(2), Atom::Havoc { dst: VarId(1) }, copy(1, 0), copy(0, 2)];
        let prims = [BP::Bit(0), BP::Bit(1), BP::Bit(2), BP::PBit(0), BP::PBit(2)];
        for a in &atoms {
            for prim in &prims {
                for p in 0..8u32 {
                    for d in 0..8u32 {
                        check_wp_exact(&Bits, a, prim, &p, &d).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn backward_finds_parameter_condition() {
        // Trace: d0 --null(0)--> d1 --copy(1<-0)--> d2.
        // Failure: bit 1 set at the end. That happens iff p tracks bit 0.
        let trace = [null(0), copy(1, 0)];
        let not_q = Formula::prim(BP::Bit(1));
        let p = 0b1; // current abstraction: track bit 0 (fails).
        let d0 = 0u32;
        let cfg = BeamConfig::default();
        let f = analyze_trace(&Bits, &p, &d0, &trace, &not_q, &cfg).unwrap();
        // Sufficient condition at entry: d0-bit ∨ p0-bit.
        let phi = restrict(&f, &d0);
        // d0 = 0 evaluates the state part away; unviable set = { p | p0 }.
        for bits in 0..4u32 {
            let asg = [(bits & 1) == 1, (bits & 2) == 2];
            let in_phi = phi.eval(&asg);
            assert_eq!(in_phi, asg[0], "phi should be exactly p0; got {phi:?}");
        }
    }

    #[test]
    fn backward_soundness_everything_eliminated_really_fails() {
        // Random-ish traces; check Theorem 3(2) by enumeration.
        let traces: Vec<Vec<Atom>> = vec![
            vec![null(0), copy(1, 0), Atom::Havoc { dst: VarId(0) }],
            vec![null(1), null(0), copy(2, 1)],
            vec![copy(1, 0), null(1), copy(0, 1)],
        ];
        let not_q = Formula::or(vec![
            Formula::prim(BP::Bit(1)),
            Formula::and(vec![Formula::prim(BP::Bit(0)), Formula::prim(BP::Bit(2))]),
        ]);
        let cfg = BeamConfig::with_k(1);
        for trace in &traces {
            for p in 0..8u32 {
                for d0 in 0..8u32 {
                    // Only analyze genuine counterexamples.
                    let mut d = d0;
                    for a in trace {
                        d = Bits.transfer(&p, a, &d);
                    }
                    if !not_q.holds(&p, &d) {
                        continue;
                    }
                    let f = analyze_trace(&Bits, &p, &d0, trace, &not_q, &cfg).unwrap();
                    // (1) the current (p, d0) is eliminated:
                    assert!(f.holds(&p, &d0));
                    // (2) everything in σ(f) really fails:
                    for p2 in 0..8u32 {
                        for d2 in 0..8u32 {
                            if f.holds(&p2, &d2) {
                                let mut dd = d2;
                                for a in trace {
                                    dd = Bits.transfer(&p2, a, &dd);
                                }
                                assert!(
                                    not_q.holds(&p2, &dd),
                                    "unsound elimination of (p={p2:b}, d={d2:b}) on {trace:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn membership_lost_detected_for_bogus_trace() {
        // Final state does not fail the query -> not a counterexample.
        let trace = [Atom::Havoc { dst: VarId(1) }];
        let not_q = Formula::prim(BP::Bit(1));
        let err = analyze_trace(&Bits, &0, &0, &trace, &not_q, &BeamConfig::default()).unwrap_err();
        assert!(matches!(err, MetaError::MembershipLost { step: 1 }));
    }

    #[test]
    fn restrict_drops_cubes_false_at_initial_state() {
        let f = Formula::or(vec![
            Formula::prim(BP::Bit(0)), // false at d0 = 0
            Formula::and(vec![Formula::prim(BP::PBit(1)), Formula::nprim(BP::Bit(2))]),
        ]);
        let dnf = to_dnf(&f, &BeamConfig::exhaustive(), &|_| true);
        let phi = restrict(&dnf, &0u32);
        // Only the p1 cube survives; ¬d2 is true at d0.
        assert!(phi.eval(&[false, true, false]));
        assert!(!phi.eval(&[true, false, false]));
    }
}
