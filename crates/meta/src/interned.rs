//! The interned meta-analysis kernel: the backward hot path of Figure 7
//! over packed integer cubes instead of `BTreeSet<Lit<P>>` trees.
//!
//! The tree representation ([`crate::formula`]) stays the client-facing
//! surface; a trace analysis lowers it at entry:
//!
//! * a per-solve [`InternCache`] closes the primitive set under `wp_prim`
//!   across all atoms seen so far, interns it into dense `u32` ids, and
//!   precomputes `param_atom` metadata and the pairwise implication /
//!   contradiction matrices — paid once per *query*, not once per CEGAR
//!   iteration, because the closure, the raw wp formulas, and the
//!   matrices depend only on the atoms and `not_q`, never on the
//!   abstraction `p` being refuted;
//! * literals are packed as `id << 1 | pos` and cubes become sorted
//!   `Vec<u32>` with a 64-bit occurrence signature, so subsumption and
//!   conjunction reject non-candidates with one `&`/`|` word op before
//!   falling back to the id-indexed matrices;
//! * a wp memo keyed by `(atom id, packed literal)` converts each weakest
//!   precondition to DNF once per *solve* instead of once per literal
//!   occurrence — entries whose conversion never hit emergency pruning
//!   are `p`-independent and survive across iterations.
//!
//! **Bit-identity contract.** The driver's min-cost solver breaks cost
//! ties by clause *syntax*, so the learned parameter formulas — and hence
//! whole `solve_query` outcomes — only reproduce the tree path if this
//! kernel mirrors it *syntactically*, not just semantically. The mirror
//! rests on four invariants, checked by the differential tests:
//!
//! 1. ids are assigned in primitive `Ord` order, so packed-literal order
//!    equals [`Lit`] order and `Vec<u32>` lexicographic order equals
//!    `BTreeSet<Lit>` order — and this holds for **any** `Ord`-sorted
//!    superset of the trace's own closure, which is what lets one cache
//!    (whose universe only grows) serve every iteration of a solve;
//! 2. every operation (`insert` clash rules including the asymmetric
//!    contradiction direction, `conjoin`'s sequential inserts, `simplify`
//!    / `emergency_prune` / `approx` sort-and-cut orders, the
//!    [`Formula::and`] constant folding inside wp) replays the tree
//!    implementation's exact order of operations;
//! 3. a memoized wp DNF is reused only when its conversion never hit
//!    emergency pruning — pruning consults the per-step `keep` predicate,
//!    so a pruned conversion is recomputed at each step it is used (and
//!    whether a conversion prunes at all is `p`-independent, so the
//!    stable/unstable classification itself is safe to cache);
//! 4. everything that *does* depend on the current `p`/`d_I` — the
//!    per-step truth table and the `eval_state(d_I)` row — is recomputed
//!    on every call and never cached.

use crate::approx::BeamConfig;
use crate::backward::{MetaClient, MetaError, ParamOf, StateOf};
use crate::formula::{Cube, Dnf, Formula, Lit, Primitive};
use pda_lang::Atom;
use pda_util::{fault_point, scoped_chunk_map, Counter, ObsRegistry, Span, SpanKind, StripedLock};
use pda_solver::PFormula;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A packed literal: `prim id << 1 | positive`.
///
/// Because ids are assigned in primitive `Ord` order, the natural `u32`
/// order of packed literals coincides with [`Lit`]'s derived order
/// (primitive first, then `pos` with `false < true`).
type PLit = u32;

fn plit(id: u32, pos: bool) -> PLit {
    id << 1 | pos as u32
}

fn lit_id(l: PLit) -> usize {
    (l >> 1) as usize
}

fn lit_pos(l: PLit) -> bool {
    l & 1 == 1
}

/// Signature bit for a literal's primitive: occurrence of prim `id` sets
/// bit `id mod 64`. Shared prims always share a bit, so disjoint
/// signatures prove disjoint prim sets (the converse can fail — that only
/// costs a fast path, never soundness).
fn sig_bit(l: PLit) -> u64 {
    1u64 << (lit_id(l) & 63)
}

/// A dense boolean matrix over primitive ids (row-major bitset).
struct Matrix {
    words: usize,
    bits: Vec<u64>,
}

impl Matrix {
    fn new(n: usize) -> Matrix {
        let words = n.div_ceil(64).max(1);
        Matrix { words, bits: vec![0; words.saturating_mul(n)] }
    }

    fn set(&mut self, i: usize, j: usize) {
        self.bits[i * self.words + j / 64] |= 1u64 << (j % 64);
    }

    fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.words + j / 64] >> (j % 64) & 1 == 1
    }
}

/// The `P`-free core of a [`PrimTable`]: the pairwise matrices and the
/// flags derived from them. Split out of the table so the data-parallel
/// cube paths can hand worker threads a plain `Sync` borrow (words and
/// bools) without demanding `P: Sync` from every client.
struct TableCore {
    /// `implies[i][j] = prims[i].implies(prims[j])`.
    implies: Matrix,
    /// `contradicts[i][j] = prims[i].contradicts(prims[j])`.
    contradicts: Matrix,
    /// Some pair of interned prims contradicts.
    any_contradiction: bool,
    /// `implies` is exactly the identity matrix (reflexive, no
    /// off-diagonal entries) — true for every client that only overrides
    /// `contradicts`, enabling the binary-search implication path.
    implies_identity: bool,
    /// `implies` is exactly the identity and no pair contradicts: literal
    /// implication degenerates to literal equality, enabling the
    /// signature-subset fast path.
    trivial: bool,
}

impl TableCore {
    /// Mirrors [`Lit::implies`] on packed literals via the matrices.
    fn lit_implies(&self, a: PLit, b: PLit) -> bool {
        match (lit_pos(a), lit_pos(b)) {
            (true, true) => self.implies.get(lit_id(a), lit_id(b)),
            (false, false) => self.implies.get(lit_id(b), lit_id(a)),
            (true, false) => self.contradicts.get(lit_id(a), lit_id(b)),
            (false, true) => false,
        }
    }
}

/// The intern table: primitives, their cached metadata, and the
/// precomputed implication/contradiction matrices. Rebuilt only when the
/// cache's primitive universe grows.
struct PrimTable<P: Primitive> {
    /// Interned primitives in `Ord` order; the index is the id.
    prims: Vec<P>,
    id_of: HashMap<P, u32>,
    /// `param_atom()` per id, cached at intern time.
    param_atom: Vec<Option<(usize, bool)>>,
    /// The `P`-free matrices and flags the cube operations run on.
    /// `Arc` so a parallel batch's [`WarmStore`] can hand every query
    /// with the same universe the same rebuilt core.
    core: Arc<TableCore>,
}

/// An interned cube: sorted packed literals plus two occurrence
/// signatures — `sig` over all literals' prims, `pos_sig` over the prims
/// of *positive* literals only.
///
/// The derived `Ord` compares `lits` first; both signatures are functions
/// of `lits`, so the comparison coincides with the tree [`Cube`]'s
/// `BTreeSet` order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ICube {
    lits: Vec<PLit>,
    sig: u64,
    pos_sig: u64,
}

impl ICube {
    fn top() -> ICube {
        ICube { lits: Vec::new(), sig: 0, pos_sig: 0 }
    }

    /// Mirror of [`Cube::insert`]: clash on the opposite literal or on an
    /// *existing positive* literal contradicting a positive newcomer (the
    /// tree checks `existing.contradicts(new)` only — the asymmetry is
    /// load-bearing for bit-identity).
    fn insert(&mut self, lit: PLit, t: &TableCore) -> bool {
        if self.lits.binary_search(&(lit ^ 1)).is_ok() {
            return false;
        }
        if t.any_contradiction && lit_pos(lit) {
            let id = lit_id(lit);
            for &l in &self.lits {
                if lit_pos(l) && t.contradicts.get(lit_id(l), id) {
                    return false;
                }
            }
        }
        if let Err(i) = self.lits.binary_search(&lit) {
            self.lits.insert(i, lit);
        }
        self.sig |= sig_bit(lit);
        if lit_pos(lit) {
            self.pos_sig |= sig_bit(lit);
        }
        true
    }

    /// Mirror of [`Cube::conjoin`]: insert `other`'s literals in ascending
    /// order, failing on the first clash. When no interned pair
    /// contradicts and the signatures prove the prim sets disjoint, no
    /// insert can clash and a plain sorted merge suffices.
    fn conjoin(&self, other: &ICube, t: &TableCore) -> Option<ICube> {
        if !t.any_contradiction && self.sig & other.sig == 0 {
            let mut lits = Vec::with_capacity(self.lits.len() + other.lits.len());
            let (mut i, mut j) = (0, 0);
            while i < self.lits.len() && j < other.lits.len() {
                if self.lits[i] < other.lits[j] {
                    lits.push(self.lits[i]);
                    i += 1;
                } else {
                    lits.push(other.lits[j]);
                    j += 1;
                }
            }
            lits.extend_from_slice(&self.lits[i..]);
            lits.extend_from_slice(&other.lits[j..]);
            return Some(ICube {
                lits,
                sig: self.sig | other.sig,
                pos_sig: self.pos_sig | other.pos_sig,
            });
        }
        let mut out = self.clone();
        for &l in &other.lits {
            if !out.insert(l, t) {
                return None;
            }
        }
        Some(out)
    }

    /// Mirror of [`Cube::implies`]: every literal of `other` implied by
    /// some literal of `self`. With trivial matrices this is a literal
    /// subset test, signature-rejected in one word op. With an identity
    /// `implies` matrix (contradictions allowed — the common shape for
    /// clients that only override `contradicts`) a *positive* literal of
    /// `other` is implied only by its exact self, so a positive prim of
    /// `other` absent from `self`'s signature refutes the implication in
    /// one word op — negative literals are excluded from `pos_sig`
    /// because a contradicting positive can also imply them.
    fn implies(&self, other: &ICube, t: &TableCore, obs: &mut ObsRegistry) -> bool {
        obs.inc(Counter::SubsumptionChecks);
        if t.trivial {
            if other.sig & !self.sig != 0 {
                obs.inc(Counter::SubsumptionFastRejects);
                return false;
            }
            return is_subset(&other.lits, &self.lits);
        }
        if t.implies_identity {
            if other.pos_sig & !self.sig != 0 {
                obs.inc(Counter::SubsumptionFastRejects);
                return false;
            }
            return other.lits.iter().all(|&lo| {
                if self.lits.binary_search(&lo).is_ok() {
                    return true;
                }
                !lit_pos(lo)
                    && self
                        .lits
                        .iter()
                        .any(|&ls| lit_pos(ls) && t.contradicts.get(lit_id(ls), lit_id(lo)))
            });
        }
        other
            .lits
            .iter()
            .all(|&lo| self.lits.iter().any(|&ls| t.lit_implies(ls, lo)))
    }
}

/// `sub ⊆ sup` over sorted slices.
fn is_subset(sub: &[PLit], sup: &[PLit]) -> bool {
    let mut j = 0;
    'outer: for &l in sub {
        while j < sup.len() {
            match sup[j].cmp(&l) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Collects the primitives of a formula.
fn prims_of<P: Primitive>(f: &Formula<P>, out: &mut Vec<P>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Prim(p) => out.push(p.clone()),
        Formula::Not(g) => prims_of(g, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                prims_of(g, out);
            }
        }
    }
}

/// Counts the nodes of a formula tree (for deterministic byte estimates).
fn formula_nodes<P: Primitive>(f: &Formula<P>) -> u64 {
    match f {
        Formula::True | Formula::False | Formula::Prim(_) => 1,
        Formula::Not(g) => 1u64.saturating_add(formula_nodes(g)),
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().fold(1u64, |acc, g| acc.saturating_add(formula_nodes(g)))
        }
    }
}

/// A memoized per-literal wp variant (the formula the tree path builds as
/// `wp` or `¬wp` before `Formula::and` folding).
enum WpEntry<P> {
    /// Folds away as a conjunct (`Formula::and` drops `True` parts).
    ConstTrue,
    /// Annihilates the whole cube's precondition.
    ConstFalse,
    /// DNF conversion that never hit emergency pruning — keep-independent
    /// (hence `p`-independent) and safe to reuse at any step of any
    /// iteration within the cache's current table generation.
    Stable(Vec<ICube>),
    /// Conversion pruned under some step's `keep`; the variant formula is
    /// kept so each use reconverts under its own step.
    Unstable(Formula<P>),
}

/// The wp memo, indexed `aid * 2 * n_prims + packed_lit`. Lives in the
/// [`InternCache`] so stable entries survive across CEGAR iterations; it
/// is cleared whenever the table is rebuilt (ids change) and grown when
/// new atoms register.
struct WpMemo<P> {
    stride: usize,
    entries: Vec<Option<WpEntry<P>>>,
}

impl<P: Primitive> WpMemo<P> {
    fn reset(&mut self, n_prims: usize) {
        self.stride = 2 * n_prims;
        self.entries.clear();
    }

    fn grow(&mut self, n_atoms: usize) {
        let need = n_atoms.saturating_mul(self.stride);
        if self.entries.len() < need {
            self.entries.resize_with(need, || None);
        }
    }

    fn key(&self, aid: u32, lit: PLit) -> usize {
        (aid as usize).saturating_mul(self.stride).saturating_add(lit as usize)
    }

    /// Materializes the entry for `(aid, lit)` if absent, counting memo
    /// hits/misses, and returns its key.
    fn ensure(
        &mut self,
        k: &Kernel<'_, P>,
        aid: u32,
        lit: PLit,
        cfg: &BeamConfig,
        step: usize,
        obs: &mut ObsRegistry,
    ) -> usize {
        let key = self.key(aid, lit);
        if self.entries[key].is_some() {
            obs.inc(Counter::WpHits);
            return key;
        }
        obs.inc(Counter::WpMisses);
        let prim = &k.table.prims[lit_id(lit)];
        // An absent entry is the closure's elided identity wp (the atom
        // leaves the prim untouched): reconstruct `prim` itself, which is
        // exactly the formula a storing closure would have kept, so every
        // downstream counter and memo entry is unchanged.
        let ident;
        let w = match k.wp_raw.get(&(aid, prim.clone())) {
            Some(w) => w,
            None => {
                ident = Formula::prim(prim.clone());
                &ident
            }
        };
        let v = if lit_pos(lit) { w.clone() } else { Formula::not(w.clone()) };
        let entry = if v == Formula::True {
            WpEntry::ConstTrue
        } else if v == Formula::False {
            WpEntry::ConstFalse
        } else {
            let mut pruned = false;
            let cubes = nnf_dnf_i(&v, true, cfg, k, step, obs, &mut pruned);
            if pruned {
                WpEntry::Unstable(v)
            } else {
                WpEntry::Stable(cubes)
            }
        };
        self.entries[key] = Some(entry);
        key
    }
}

/// Deterministic (fixed-key `SipHash`) hash for warm-store shard and map
/// lookups; the per-process-seeded `RandomState` would make contention
/// patterns irreproducible across runs.
fn det_hash<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// A shared read-through store of `p`-independent meta facts, attached to
/// the per-query [`InternCache`]s of a parallel batch so workers stop
/// recomputing each other's warm-up.
///
/// One store: whole [`TableCore`]s keyed by the `Ord`-ordered primitive
/// universe, serving the O(n²) implication/contradiction matrix
/// rebuilds. Queries over the same program close over the same universe,
/// so a single lookup hands every later query the finished matrices.
///
/// Granularity is the load-bearing decision. Two finer-grained variants
/// were measured *slower than recomputing* on the suite workloads and
/// deliberately rejected:
///
/// * per-pair `implies`/`contradicts` verdicts — a store probe is a
///   clone + hash + shard lock per pair, while clients' verdicts are a
///   few integer compares;
/// * per-entry raw `wp_prim` formulas — ~90% of wp formulas are the
///   identity (see [`InternCache::close_universe`]'s elision, which
///   removes that cost for every configuration), and the surviving
///   minority are cheaper to re-derive than to probe.
///
/// Because each per-query cache still *inserts, interns, memoizes, and
/// counts* exactly as it would cold — the store only changes who derives
/// a value first, never what any cache observes — per-query wp hit/miss
/// counters, cube counts, and therefore the structured trace stream stay
/// bit-identical to a cold sequential run at any worker count or
/// schedule. Lock waits on the striped shards are metered (contended
/// waits only) and drained via [`WarmStore::wait_micros`].
pub struct WarmStore<P: Primitive> {
    cores: StripedLock<HashMap<Vec<P>, Arc<TableCore>>>,
    waits: AtomicU64,
}

impl<P: Primitive> WarmStore<P> {
    /// An empty store with `shards` lock stripes per map.
    pub fn new(shards: usize) -> WarmStore<P> {
        WarmStore { cores: StripedLock::new(shards), waits: AtomicU64::new(0) }
    }

    /// Total microseconds callers spent blocked on contended shards.
    pub fn wait_micros(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// The [`TableCore`] for the `Ord`-ordered universe `prims`,
    /// computing and storing it on first sight. `compute` runs outside
    /// the shard lock: a racing duplicate computes an equal core (pure
    /// function of the key) and first-insert-wins keeps the store
    /// consistent — every caller ends up holding the stored `Arc`.
    fn core_for(&self, prims: &[P], compute: impl FnOnce() -> TableCore) -> Arc<TableCore> {
        let h = det_hash(&prims);
        if let Some(c) = self.cores.lock(h, &self.waits).get(prims) {
            return Arc::clone(c);
        }
        fault_point("warm.rebuild");
        let c = Arc::new(compute());
        self.cores
            .lock(h, &self.waits)
            .entry(prims.to_vec())
            .or_insert(c)
            .clone()
    }
}

/// The state the interned kernel keeps for a whole `solve_query` run.
///
/// Everything in here is independent of the abstraction `p` currently
/// being refuted, so it is computed incrementally as traces arrive and
/// reused across CEGAR iterations:
///
/// * the atom registry (ids are first-seen order — atom ids carry no
///   ordering obligation, unlike prim ids);
/// * the primitive universe, closed under `wp_prim` over all registered
///   atoms, with every raw wp formula retained;
/// * the intern table with its `Ord`-ordered ids and implication /
///   contradiction matrices, rebuilt only when the universe grows (a
///   superset universe preserves the id-order isomorphism, so outputs
///   stay bit-identical — see the module docs);
/// * the wp memo (cleared on table rebuilds, since entries embed ids).
///
/// A cache must only be reused with the same client; the abstraction and
/// initial state may vary freely between calls (per-call truth tables and
/// `eval_state(d_I)` rows are never cached).
pub struct InternCache<P: Primitive> {
    atoms: Vec<Atom>,
    aid_of: HashMap<Atom, u32>,
    universe: BTreeSet<P>,
    wp_raw: HashMap<(u32, P), Formula<P>>,
    table: Option<PrimTable<P>>,
    memo: WpMemo<P>,
    /// Optional shared warm store consulted (read-through) before asking
    /// the client for a wp formula or a pairwise verdict. `None` on the
    /// cold sequential path. Excluded from [`InternCache::approx_bytes`]:
    /// the store is shared, not retained per query.
    warm: Option<Arc<WarmStore<P>>>,
}

impl<P: Primitive> Default for InternCache<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Primitive> InternCache<P> {
    /// An empty cache: first use pays the closure, later uses extend it.
    pub fn new() -> InternCache<P> {
        InternCache {
            atoms: Vec::new(),
            aid_of: HashMap::new(),
            universe: BTreeSet::new(),
            wp_raw: HashMap::new(),
            table: None,
            memo: WpMemo { stride: 0, entries: Vec::new() },
            warm: None,
        }
    }

    /// An empty cache that consults `warm` before computing wp formulas
    /// or pairwise verdicts. The cache's observable evolution — what it
    /// stores, interns, memoizes, and counts — is identical to
    /// [`InternCache::new`]; only the cost of first derivations changes.
    pub fn with_warm(warm: Arc<WarmStore<P>>) -> InternCache<P> {
        let mut c = Self::new();
        c.warm = Some(warm);
        c
    }

    /// Registers the trace's atoms, returning the per-step atom ids and
    /// the ids that are new to this cache.
    fn register_atoms(&mut self, trace: &[Atom]) -> (Vec<u32>, Vec<u32>) {
        let InternCache { atoms, aid_of, .. } = self;
        let mut fresh = Vec::new();
        let atom_of_step = trace
            .iter()
            .map(|a| {
                *aid_of.entry(*a).or_insert_with(|| {
                    atoms.push(*a);
                    let aid = atoms.len() as u32 - 1;
                    fresh.push(aid);
                    aid
                })
            })
            .collect();
        (atom_of_step, fresh)
    }

    /// Extends the primitive universe closure with `not_q`'s prims and the
    /// freshly registered atoms, computing (and retaining) the raw wp
    /// formula for every new `(atom, prim)` pair. Returns whether the
    /// universe grew (which forces a table rebuild).
    ///
    /// Incremental coverage argument: `(old atom, old prim)` pairs are
    /// already stored; `(new atom, old prim)` pairs are the snapshot loop;
    /// every genuinely new prim goes through `work`, which pairs it with
    /// *all* atoms, old and new.
    fn close_universe<C: MetaClient<Prim = P>>(
        &mut self,
        client: &C,
        fresh_atoms: &[u32],
        not_q: &Formula<P>,
    ) -> bool {
        // Snapshot before seeding, so the snapshot loop never duplicates
        // work-loop pairs.
        let pre: Vec<P> = if fresh_atoms.is_empty() {
            Vec::new()
        } else {
            self.universe.iter().cloned().collect()
        };
        let mut scratch = Vec::new();
        let mut work: Vec<P> = Vec::new();
        let mut changed = false;
        prims_of(not_q, &mut scratch);
        for q in scratch.drain(..) {
            if self.universe.insert(q.clone()) {
                changed = true;
                work.push(q);
            }
        }
        for &aid in fresh_atoms {
            for q in &pre {
                let atom = self.atoms[aid as usize];
                let w = client.wp_prim(&atom, q);
                // Identity wp — the atom leaves the prim untouched — is by
                // far the common case (~90% of all pairs on the suite
                // programs): its only prim is `q`, already in the
                // universe, so it grows nothing, and the kernel
                // reconstructs it on demand from the *absence* of an
                // entry. Eliding the store cuts the closure's dominant
                // cost (hash inserts and formula walks) for every run.
                if matches!(&w, Formula::Prim(p) if p == q) {
                    continue;
                }
                prims_of(&w, &mut scratch);
                for r in scratch.drain(..) {
                    if self.universe.insert(r.clone()) {
                        changed = true;
                        work.push(r);
                    }
                }
                self.wp_raw.insert((aid, q.clone()), w);
            }
        }
        while let Some(pr) = work.pop() {
            for aid in 0..self.atoms.len() as u32 {
                let atom = self.atoms[aid as usize];
                let w = client.wp_prim(&atom, &pr);
                if matches!(&w, Formula::Prim(p) if *p == pr) {
                    continue;
                }
                prims_of(&w, &mut scratch);
                for r in scratch.drain(..) {
                    if self.universe.insert(r.clone()) {
                        changed = true;
                        work.push(r);
                    }
                }
                self.wp_raw.insert((aid, pr.clone()), w);
            }
        }
        changed
    }

    /// Deterministic estimate of the bytes this cache retains across CEGAR
    /// iterations: atoms, the closed primitive universe, raw wp formulas,
    /// the intern table with its matrices, and the wp memo. Counts ×
    /// `size_of` only — never allocator or RSS measurements — so the
    /// memory governor's pressure decisions reproduce bit-identically.
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        let node = size_of::<Formula<P>>() as u64;
        let cube = |c: &ICube| {
            (size_of::<ICube>() as u64).saturating_add((c.lits.len() as u64).saturating_mul(4))
        };
        let mut bytes = (self.atoms.len() as u64)
            .saturating_mul(size_of::<Atom>() as u64)
            .saturating_add((self.universe.len() as u64).saturating_mul(size_of::<P>() as u64))
            .saturating_add(
                (self.wp_raw.len() as u64).saturating_mul(4 + size_of::<P>() as u64),
            );
        for w in self.wp_raw.values() {
            bytes = bytes.saturating_add(formula_nodes(w).saturating_mul(node));
        }
        if let Some(t) = &self.table {
            bytes = bytes
                .saturating_add((t.core.implies.bits.len() as u64).saturating_mul(8))
                .saturating_add((t.core.contradicts.bits.len() as u64).saturating_mul(8))
                .saturating_add((t.prims.len() as u64).saturating_mul(
                    size_of::<P>() as u64 + size_of::<Option<(usize, bool)>>() as u64,
                ));
        }
        bytes = bytes.saturating_add(
            (self.memo.entries.len() as u64)
                .saturating_mul(size_of::<Option<WpEntry<P>>>() as u64),
        );
        for e in self.memo.entries.iter().flatten() {
            bytes = bytes.saturating_add(match e {
                WpEntry::ConstTrue | WpEntry::ConstFalse => 0,
                WpEntry::Stable(cubes) => {
                    cubes.iter().fold(0u64, |acc, c| acc.saturating_add(cube(c)))
                }
                WpEntry::Unstable(v) => formula_nodes(v).saturating_mul(node),
            });
        }
        bytes
    }

    /// Evicts every [`WpEntry::Unstable`] memo entry (the first rung of
    /// the memory governor's degradation ladder), returning how many were
    /// dropped. Memo entries are pure accelerators — an evicted entry is
    /// recomputed from the retained raw wp formulas on its next use with a
    /// bit-identical result — so eviction changes cost, never outcomes.
    pub fn evict_unstable(&mut self) -> u64 {
        let mut evicted = 0;
        for e in &mut self.memo.entries {
            if matches!(e, Some(WpEntry::Unstable(_))) {
                *e = None;
                evicted += 1;
            }
        }
        evicted
    }

    /// Reinterns the universe in `Ord` order and precomputes the matrices;
    /// the memo resets because its entries embed the old generation's ids.
    /// With a warm store attached, the n² matrix pass is shared at whole-
    /// core granularity across every query that closes over the same
    /// universe.
    fn rebuild_table(&mut self) {
        let prims: Vec<P> = self.universe.iter().cloned().collect();
        let n = prims.len();
        let id_of: HashMap<P, u32> =
            prims.iter().enumerate().map(|(i, q)| (q.clone(), i as u32)).collect();
        let param_atom: Vec<_> = prims.iter().map(|q| q.param_atom()).collect();
        let core = match &self.warm {
            Some(ws) => ws.core_for(&prims, || compute_core(&prims)),
            None => Arc::new(compute_core(&prims)),
        };
        self.table = Some(PrimTable { prims, id_of, param_atom, core });
        self.memo.reset(n);
    }
}

/// The pairwise `implies`/`contradicts` matrices and derived flags for an
/// `Ord`-ordered primitive universe — a pure function of `prims`, which
/// is what lets [`WarmStore::core_for`] share the result across queries.
fn compute_core<P: Primitive>(prims: &[P]) -> TableCore {
    let n = prims.len();
    let mut implies = Matrix::new(n);
    let mut contradicts = Matrix::new(n);
    let mut identity = true;
    let mut any_contradiction = false;
    for (i, a) in prims.iter().enumerate() {
        for (j, b) in prims.iter().enumerate() {
            if a.implies(b) {
                implies.set(i, j);
                if i != j {
                    identity = false;
                }
            } else if i == j {
                identity = false;
            }
            if a.contradicts(b) {
                contradicts.set(i, j);
                any_contradiction = true;
            }
        }
    }
    TableCore {
        implies,
        contradicts,
        any_contradiction,
        implies_identity: identity,
        trivial: identity && !any_contradiction,
    }
}

/// The per-call view the backward walk runs on: the cache's table and raw
/// wp formulas (shared borrows), plus everything that depends on this
/// call's `p`/`d_I`/trace — the truth table and the step→atom map.
struct Kernel<'c, P: Primitive> {
    table: &'c PrimTable<P>,
    /// `wp_raw[(aid, prim)]`: the client's raw `wp_prim` formula.
    wp_raw: &'c HashMap<(u32, P), Formula<P>>,
    /// `truth[step * twords ..]`: bit `id` = `prims[id].holds(p, states[step])`.
    truth: Vec<u64>,
    twords: usize,
    /// `atom_of_step[i]` is the cache-global atom id of trace step `i`.
    atom_of_step: Vec<u32>,
    /// Worker count for the data-parallel cube paths; `1` = fully serial.
    jobs: usize,
}

impl<P: Primitive> Kernel<'_, P> {
    fn truth_bit(&self, step: usize, id: usize) -> bool {
        self.truth[step * self.twords + id / 64] >> (id % 64) & 1 == 1
    }

    /// Mirror of the per-step `keep` predicate `cube.holds(p, states[step])`.
    fn holds_at(&self, c: &ICube, step: usize) -> bool {
        c.lits.iter().all(|&l| self.truth_bit(step, lit_id(l)) == lit_pos(l))
    }
}

/// Mirror of `approx::emergency_prune` on interned cubes. Sets `pruned`
/// only when cubes were actually cut (a dedup that fits under the cap
/// leaves the result keep-independent).
fn emergency_prune_i<P: Primitive>(
    mut cubes: Vec<ICube>,
    cfg: &BeamConfig,
    k: &Kernel<'_, P>,
    step: usize,
    obs: &mut ObsRegistry,
    pruned: &mut bool,
) -> Vec<ICube> {
    cubes.sort_by(|a, b| a.lits.len().cmp(&b.lits.len()).then_with(|| a.lits.cmp(&b.lits)));
    cubes.dedup();
    if cubes.len() <= cfg.max_cubes {
        return cubes;
    }
    *pruned = true;
    let cut = cfg.max_cubes / 2;
    let mut out: Vec<ICube> = cubes[..cut].to_vec();
    if !out.iter().any(|c| k.holds_at(c, step)) {
        if let Some(c) = cubes[cut..].iter().find(|c| k.holds_at(c, step)) {
            out.push(c.clone());
        }
    }
    obs.add(Counter::ApproxDrops, (cubes.len() - out.len()) as u64);
    out
}

/// Minimum `xs × ys` pair count before `product_i` fans out over threads
/// (below it, spawn overhead dwarfs the conjunction work).
const PAR_MIN_PAIRS: usize = 64;

/// Minimum `kept` length before `simplify_i` fans its subsumption scan
/// out over threads.
const PAR_MIN_SCAN: usize = 512;

/// Mirror of `approx::product`. With `k.jobs > 1` the cross product fans
/// out over contiguous `xs` ranges — but only when the full product fits
/// under `max_cubes`, where the serial loop provably never calls
/// [`emergency_prune_i`]: each chunk then pushes exactly the cubes the
/// serial loop would, and concatenating chunks in `xs` order reproduces
/// the serial output (and `CubesBuilt` count) bit for bit.
fn product_i<P: Primitive>(
    xs: &[ICube],
    ys: &[ICube],
    cfg: &BeamConfig,
    k: &Kernel<'_, P>,
    step: usize,
    obs: &mut ObsRegistry,
    pruned: &mut bool,
) -> Vec<ICube> {
    let pairs = xs.len().saturating_mul(ys.len());
    if k.jobs > 1 && xs.len() > 1 && pairs >= PAR_MIN_PAIRS && pairs <= cfg.max_cubes {
        let core = &k.table.core;
        let chunks = scoped_chunk_map(xs, k.jobs, |_, xchunk| {
            let mut built = 0u64;
            let mut part = Vec::with_capacity(xchunk.len().saturating_mul(ys.len()));
            for x in xchunk {
                for y in ys {
                    if let Some(c) = x.conjoin(y, core) {
                        built += 1;
                        part.push(c);
                    }
                }
            }
            (part, built)
        });
        let mut out = Vec::with_capacity(pairs);
        for (part, built) in chunks {
            obs.add(Counter::CubesBuilt, built);
            out.extend(part);
        }
        return out;
    }
    let mut out = Vec::with_capacity(pairs.min(cfg.max_cubes.saturating_add(1)));
    for x in xs {
        for y in ys {
            if let Some(c) = x.conjoin(y, &k.table.core) {
                obs.inc(Counter::CubesBuilt);
                out.push(c);
            }
        }
        if out.len() > cfg.max_cubes {
            out = emergency_prune_i(out, cfg, k, step, obs, pruned);
        }
    }
    out
}

/// Mirror of `approx::nnf_dnf`; `step` indexes the truth table for the
/// `keep` predicate.
fn nnf_dnf_i<P: Primitive>(
    f: &Formula<P>,
    sign: bool,
    cfg: &BeamConfig,
    k: &Kernel<'_, P>,
    step: usize,
    obs: &mut ObsRegistry,
    pruned: &mut bool,
) -> Vec<ICube> {
    match (f, sign) {
        (Formula::True, true) | (Formula::False, false) => vec![ICube::top()],
        (Formula::True, false) | (Formula::False, true) => Vec::new(),
        (Formula::Prim(p), pos) => {
            let id = k.table.id_of[p];
            let mut c = ICube::top();
            let ok = c.insert(plit(id, pos), &k.table.core);
            debug_assert!(ok);
            obs.inc(Counter::CubesBuilt);
            vec![c]
        }
        (Formula::Not(inner), s) => nnf_dnf_i(inner, !s, cfg, k, step, obs, pruned),
        (Formula::And(fs), true) | (Formula::Or(fs), false) => {
            let mut acc = vec![ICube::top()];
            for g in fs {
                let gs = nnf_dnf_i(g, sign, cfg, k, step, obs, pruned);
                acc = product_i(&acc, &gs, cfg, k, step, obs, pruned);
                if acc.is_empty() {
                    return acc;
                }
            }
            acc
        }
        (Formula::Or(fs), true) | (Formula::And(fs), false) => {
            let mut acc: Vec<ICube> = Vec::new();
            for g in fs {
                acc.extend(nnf_dnf_i(g, sign, cfg, k, step, obs, pruned));
                if acc.len() > cfg.max_cubes {
                    acc = emergency_prune_i(acc, cfg, k, step, obs, pruned);
                }
            }
            acc
        }
    }
}

/// Mirror of `approx::simplify`. The kept-scan — "is `c` subsumed by
/// anything already kept?" — is a pure disjunction over `kept`, so with
/// `k.jobs > 1` and a long enough `kept` it fans out over contiguous
/// ranges: the boolean verdict is schedule-independent, and the kept
/// sequence (hence the output) is bit-identical to serial. Only the
/// short-circuit point moves, so the `SubsumptionChecks` /
/// `SubsumptionFastRejects` *counters* depend (deterministically) on the
/// job count — they are effort meters, never part of the event stream.
fn simplify_i<P: Primitive>(
    mut cubes: Vec<ICube>,
    k: &Kernel<'_, P>,
    obs: &mut ObsRegistry,
) -> Vec<ICube> {
    cubes.sort_by(|a, b| a.lits.len().cmp(&b.lits.len()).then_with(|| a.lits.cmp(&b.lits)));
    cubes.dedup();
    let mut kept: Vec<ICube> = Vec::new();
    for c in cubes {
        let subsumed = if k.jobs > 1 && kept.len() >= PAR_MIN_SCAN {
            let core = &k.table.core;
            let verdicts = scoped_chunk_map(&kept, k.jobs, |_, chunk| {
                let mut local = ObsRegistry::default();
                let hit = chunk.iter().any(|kc| c.implies(kc, core, &mut local));
                (
                    hit,
                    local.get(Counter::SubsumptionChecks),
                    local.get(Counter::SubsumptionFastRejects),
                )
            });
            let mut any = false;
            for (hit, checks, rejects) in verdicts {
                obs.add(Counter::SubsumptionChecks, checks);
                obs.add(Counter::SubsumptionFastRejects, rejects);
                any |= hit;
            }
            any
        } else {
            kept.iter().any(|kc| c.implies(kc, &k.table.core, obs))
        };
        if !subsumed {
            kept.push(c);
        }
    }
    kept
}

/// Mirror of `approx::approx`.
fn approx_i<P: Primitive>(
    cubes: Vec<ICube>,
    cfg: &BeamConfig,
    k: &Kernel<'_, P>,
    step: usize,
    obs: &mut ObsRegistry,
) -> Option<Vec<ICube>> {
    let s = simplify_i(cubes, k, obs);
    if !s.iter().any(|c| k.holds_at(c, step)) {
        return None;
    }
    if s.len() <= cfg.k {
        return Some(s);
    }
    let take = cfg.k.saturating_sub(1);
    let mut out: Vec<ICube> = s[..take].to_vec();
    if !out.iter().any(|c| k.holds_at(c, step)) {
        let j = s.iter().find(|c| k.holds_at(c, step))?;
        out.push(j.clone());
    }
    obs.add(Counter::ApproxDrops, (s.len() - out.len()) as u64);
    Some(out)
}

/// Mirror of `backward::wp_dnf`: per cube, fold the per-literal wp
/// variants as [`Formula::and`] would, convert the conjunction to DNF,
/// and union across cubes. Conversions are served by the memo wherever
/// the memoized form is step-independent.
fn wp_dnf_i<P: Primitive>(
    k: &Kernel<'_, P>,
    memo: &mut WpMemo<P>,
    aid: u32,
    dnf: &[ICube],
    cfg: &BeamConfig,
    step: usize,
    obs: &mut ObsRegistry,
) -> Vec<ICube> {
    let mut out: Vec<ICube> = Vec::new();
    let mut part_keys: Vec<usize> = Vec::new();
    'cube: for cube in dnf {
        part_keys.clear();
        // Mirror of `Formula::and(parts)`: drop True parts, annihilate on
        // any False part.
        for &l in &cube.lits {
            let key = memo.ensure(k, aid, l, cfg, step, obs);
            match memo.entries[key].as_ref().unwrap() {
                WpEntry::ConstTrue => {}
                WpEntry::ConstFalse => continue 'cube,
                WpEntry::Stable(_) | WpEntry::Unstable(_) => part_keys.push(key),
            }
        }
        match part_keys.len() {
            // f = True → nnf_dnf yields the top cube.
            0 => out.push(ICube::top()),
            // f is the single surviving variant → its own DNF, no product
            // (mirrors `Formula::and`'s single-part unwrap).
            1 => match memo.entries[part_keys[0]].as_ref().unwrap() {
                WpEntry::Stable(cubes) => out.extend(cubes.iter().cloned()),
                WpEntry::Unstable(v) => {
                    let v = v.clone();
                    let mut pruned = false;
                    out.extend(nnf_dnf_i(&v, true, cfg, k, step, obs, &mut pruned));
                }
                _ => unreachable!(),
            },
            // f = And(parts) → fold products left to right, stopping on
            // an empty accumulator exactly as nnf_dnf does. Stable
            // entries are borrowed straight out of the memo — the product
            // only reads them.
            _ => {
                let mut acc = vec![ICube::top()];
                for &key in &part_keys {
                    let converted: Vec<ICube>;
                    let gs: &[ICube] = match memo.entries[key].as_ref().unwrap() {
                        WpEntry::Stable(cubes) => cubes,
                        WpEntry::Unstable(v) => {
                            let v = v.clone();
                            let mut pruned = false;
                            converted = nnf_dnf_i(&v, true, cfg, k, step, obs, &mut pruned);
                            &converted
                        }
                        _ => unreachable!(),
                    };
                    let mut pruned = false;
                    acc = product_i(&acc, gs, cfg, k, step, obs, &mut pruned);
                    if acc.is_empty() {
                        break;
                    }
                }
                out.extend(acc);
            }
        }
    }
    out
}

/// The result of an interned trace analysis: the final trace-entry DNF in
/// interned form, plus a snapshot of the metadata needed to restrict or
/// export it (so the result does not borrow the cache).
pub struct TraceAnalysis<P: Primitive> {
    prims: Vec<P>,
    param_atom: Vec<Option<(usize, bool)>>,
    eval_init: Vec<Option<bool>>,
    cubes: Vec<ICube>,
}

impl<P: Primitive> TraceAnalysis<P> {
    /// Mirror of [`crate::backward::restrict`], served entirely from the
    /// metadata cached at intern time (no client calls).
    pub fn restrict(&self) -> PFormula {
        let mut cubes = Vec::new();
        'cube: for cube in &self.cubes {
            let mut lits = Vec::new();
            for &l in &cube.lits {
                let id = lit_id(l);
                if let Some((atom, polarity)) = self.param_atom[id] {
                    lits.push(PFormula::lit(atom, polarity == lit_pos(l)));
                } else {
                    match self.eval_init[id] {
                        Some(b) if b == lit_pos(l) => {}
                        Some(_) => continue 'cube,
                        None => {
                            debug_assert!(false, "primitive is neither state- nor param-only");
                            continue 'cube;
                        }
                    }
                }
            }
            cubes.push(PFormula::and(lits));
        }
        PFormula::or(cubes)
    }

    /// Exports the result back to the tree representation (used by the
    /// differential oracle tests and diagnostics).
    pub fn to_dnf(&self) -> Dnf<P> {
        Dnf(self
            .cubes
            .iter()
            .map(|c| {
                Cube::from_lits_unchecked(c.lits.iter().map(|&l| Lit {
                    prim: self.prims[lit_id(l)].clone(),
                    pos: lit_pos(l),
                }))
            })
            .collect())
    }
}

/// The interned-kernel counterpart of [`crate::backward::analyze_trace`]:
/// same `B[t]` walk, same failure modes, bit-identical output (exported
/// via [`TraceAnalysis::to_dnf`] / [`TraceAnalysis::restrict`]), with the
/// hot path running on packed cubes and the solve-wide [`InternCache`].
/// `obs` accumulates the kernel's effort counters (the caller owns
/// `MetaMicros`).
///
/// The caller keeps one `cache` per solve (or any scope with a fixed
/// client) and passes it to every call; a fresh cache per call is merely
/// slower, never wrong.
///
/// # Errors
///
/// [`MetaError::MembershipLost`] under exactly the conditions of the tree
/// path — the Theorem 3 invariant check is mirrored per step.
#[allow(clippy::too_many_arguments)]
pub fn analyze_trace_interned<C: MetaClient>(
    client: &C,
    p: &ParamOf<C>,
    d_init: &StateOf<C>,
    trace: &[Atom],
    not_q: &Formula<C::Prim>,
    cfg: &BeamConfig,
    cache: &mut InternCache<C::Prim>,
    obs: &mut ObsRegistry,
) -> Result<TraceAnalysis<C::Prim>, MetaError>
where
    StateOf<C>: Clone,
{
    analyze_trace_interned_jobs(client, p, d_init, trace, not_q, cfg, cache, obs, 1)
}

/// [`analyze_trace_interned`] with an explicit data-parallelism degree for
/// the cube-level hot loops (`product_i` fan-out, `simplify_i` kept
/// scans). `meta_jobs <= 1` is exactly the serial kernel; any higher
/// value produces bit-identical cubes and outcomes — the parallel paths
/// only fire where chunked results merge back in a deterministic order
/// that reproduces the serial sequence (see the per-function docs) — so
/// the knob trades wall clock, never results.
#[allow(clippy::too_many_arguments)]
pub fn analyze_trace_interned_jobs<C: MetaClient>(
    client: &C,
    p: &ParamOf<C>,
    d_init: &StateOf<C>,
    trace: &[Atom],
    not_q: &Formula<C::Prim>,
    cfg: &BeamConfig,
    cache: &mut InternCache<C::Prim>,
    obs: &mut ObsRegistry,
    meta_jobs: usize,
) -> Result<TraceAnalysis<C::Prim>, MetaError>
where
    StateOf<C>: Clone,
{
    // Forward replay, exactly as the tree path does it.
    let mut states: Vec<StateOf<C>> = Vec::with_capacity(trace.len() + 1);
    states.push(d_init.clone());
    for a in trace {
        states.push(client.transfer(p, a, states.last().unwrap()));
    }

    // Bring the cache up to date with this trace; most iterations of a
    // solve see no new atoms and no new prims, making all three steps
    // no-ops.
    let (atom_of_step, fresh_atoms) = cache.register_atoms(trace);
    let changed = cache.close_universe(client, &fresh_atoms, not_q);
    if changed || cache.table.is_none() {
        cache.rebuild_table();
    }
    cache.memo.grow(cache.atoms.len());

    // Split the borrows: the walk reads the table and raw wps, mutates
    // only the memo.
    let InternCache { wp_raw, table, memo, .. } = cache;
    let table = table.as_ref().expect("table built above");
    let n = table.prims.len();

    // Per-call metadata — everything here depends on this call's `p` or
    // `d_I` and must never be cached.
    let eval_init: Vec<Option<bool>> = table.prims.iter().map(|q| q.eval_state(d_init)).collect();
    let twords = n.div_ceil(64).max(1);
    let mut truth = vec![0u64; twords.saturating_mul(states.len())];
    for (s, d) in states.iter().enumerate() {
        for (id, q) in table.prims.iter().enumerate() {
            if q.holds(p, d) {
                truth[s * twords + id / 64] |= 1u64 << (id % 64);
            }
        }
    }
    let k = Kernel { table, wp_raw, truth, twords, atom_of_step, jobs: meta_jobs.max(1) };

    let steps = trace.len();
    let mut pruned = false;
    let mut f = nnf_dnf_i(not_q, true, cfg, &k, steps, obs, &mut pruned);
    let span = Span::enter(obs, SpanKind::Approx);
    let approxed = approx_i(f, cfg, &k, steps, obs);
    span.exit(obs);
    f = approxed.ok_or(MetaError::MembershipLost { step: steps })?;
    for i in (0..steps).rev() {
        f = wp_dnf_i(&k, memo, k.atom_of_step[i], &f, cfg, i, obs);
        let span = Span::enter(obs, SpanKind::Approx);
        let approxed = approx_i(f, cfg, &k, i, obs);
        span.exit(obs);
        f = approxed.ok_or(MetaError::MembershipLost { step: i })?;
    }
    Ok(TraceAnalysis {
        prims: table.prims.clone(),
        param_atom: table.param_atom.clone(),
        eval_init,
        cubes: f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::{analyze_trace, restrict};
    use std::fmt;

    /// The toy bit-vector client from `backward.rs`'s tests, reused here
    /// for exhaustive tree-vs-interned differential checks.
    struct Bits;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    enum BP {
        Bit(u8),
        PBit(u8),
    }

    impl fmt::Display for BP {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                BP::Bit(i) => write!(f, "d{i}"),
                BP::PBit(i) => write!(f, "p{i}"),
            }
        }
    }

    impl Primitive for BP {
        type Param = u32;
        type State = u32;
        fn holds(&self, p: &u32, d: &u32) -> bool {
            match self {
                BP::Bit(i) => (d >> i) & 1 == 1,
                BP::PBit(i) => (p >> i) & 1 == 1,
            }
        }
        fn eval_state(&self, d: &u32) -> Option<bool> {
            match self {
                BP::Bit(i) => Some((d >> i) & 1 == 1),
                BP::PBit(_) => None,
            }
        }
        fn param_atom(&self) -> Option<(usize, bool)> {
            match self {
                BP::Bit(_) => None,
                BP::PBit(i) => Some((*i as usize, true)),
            }
        }
    }

    impl MetaClient for Bits {
        type Prim = BP;
        fn transfer(&self, p: &u32, atom: &Atom, d: &u32) -> u32 {
            match *atom {
                Atom::Null { dst } => {
                    if (p >> dst.0) & 1 == 1 {
                        d | (1 << dst.0)
                    } else {
                        *d
                    }
                }
                Atom::Havoc { dst } => d & !(1 << dst.0),
                Atom::Copy { dst, src } => {
                    if (d >> src.0) & 1 == 1 {
                        d | (1 << dst.0)
                    } else {
                        d & !(1 << dst.0)
                    }
                }
                _ => *d,
            }
        }
        fn wp_prim(&self, atom: &Atom, prim: &BP) -> Formula<BP> {
            match (*atom, *prim) {
                (Atom::Null { dst }, BP::Bit(i)) if dst.0 == i as u32 => Formula::or(vec![
                    Formula::prim(BP::Bit(i)),
                    Formula::prim(BP::PBit(i)),
                ]),
                (Atom::Havoc { dst }, BP::Bit(i)) if dst.0 == i as u32 => Formula::False,
                (Atom::Copy { dst, src }, BP::Bit(i)) if dst.0 == i as u32 => {
                    Formula::prim(BP::Bit(src.0 as u8))
                }
                (_, other) => Formula::prim(other),
            }
        }
    }

    use pda_lang::VarId;

    fn null(v: u32) -> Atom {
        Atom::Null { dst: VarId(v) }
    }
    fn copy(dst: u32, src: u32) -> Atom {
        Atom::Copy { dst: VarId(dst), src: VarId(src) }
    }
    fn havoc(v: u32) -> Atom {
        Atom::Havoc { dst: VarId(v) }
    }

    fn test_traces() -> Vec<Vec<Atom>> {
        vec![
            vec![null(0), copy(1, 0)],
            vec![null(0), copy(1, 0), havoc(0)],
            vec![null(1), null(0), copy(2, 1)],
            vec![copy(1, 0), null(1), copy(0, 1)],
            vec![havoc(2), null(2), copy(0, 2), copy(1, 0)],
        ]
    }

    fn test_not_qs() -> Vec<Formula<BP>> {
        vec![
            Formula::prim(BP::Bit(1)),
            Formula::or(vec![
                Formula::prim(BP::Bit(1)),
                Formula::and(vec![Formula::prim(BP::Bit(0)), Formula::prim(BP::Bit(2))]),
            ]),
            Formula::not(Formula::and(vec![
                Formula::prim(BP::Bit(0)),
                Formula::nprim(BP::Bit(1)),
            ])),
        ]
    }

    /// Exhaustive differential: for every genuine counterexample, the
    /// interned kernel's DNF and restriction are *identical* (not just
    /// equivalent) to the tree path's.
    #[test]
    fn interned_matches_tree_exhaustively() {
        // Small beams exercise drop_k and the keep predicate, exhaustive
        // exercises the unpruned paths.
        let cfgs =
            [BeamConfig::with_k(1), BeamConfig::with_k(2), BeamConfig::default(), BeamConfig::exhaustive()];
        let mut compared = 0usize;
        for trace in &test_traces() {
            for not_q in &test_not_qs() {
                for cfg in &cfgs {
                    for p in 0..8u32 {
                        for d0 in 0..8u32 {
                            let tree = analyze_trace(&Bits, &p, &d0, trace, not_q, cfg);
                            let mut obs = ObsRegistry::default();
                            let mut cache = InternCache::new();
                            let fast = analyze_trace_interned(
                                &Bits, &p, &d0, trace, not_q, cfg, &mut cache, &mut obs,
                            );
                            match (tree, fast) {
                                (Ok(t), Ok(f)) => {
                                    assert_eq!(t, f.to_dnf(), "DNF diverged on {trace:?} p={p:b} d0={d0:b}");
                                    assert_eq!(
                                        restrict(&t, &d0),
                                        f.restrict(),
                                        "restriction diverged on {trace:?} p={p:b} d0={d0:b}"
                                    );
                                    compared += 1;
                                }
                                (Err(a), Err(b)) => assert_eq!(a, b),
                                (a, b) => panic!(
                                    "outcome diverged on {trace:?} p={p:b} d0={d0:b}: tree {a:?} vs interned {:?}",
                                    b.map(|f| f.to_dnf())
                                ),
                            }
                        }
                    }
                }
            }
        }
        assert!(compared >= 500, "expected broad coverage, got {compared}");
    }

    /// One shared cache across many traces, queries, abstractions, and
    /// initial states must produce exactly the fresh-cache outputs: the
    /// universe only ever grows, and a superset universe preserves the
    /// id-order isomorphism (module-doc invariant 1).
    #[test]
    fn cache_reuse_is_bit_identical_to_fresh() {
        let cfg = BeamConfig::default();
        let mut shared: InternCache<BP> = InternCache::new();
        let mut compared = 0usize;
        for trace in &test_traces() {
            for not_q in &test_not_qs() {
                for p in 0..4u32 {
                    for d0 in 0..4u32 {
                        let mut s1 = ObsRegistry::default();
                        let mut fresh = InternCache::new();
                        let a = analyze_trace_interned(
                            &Bits, &p, &d0, trace, not_q, &cfg, &mut fresh, &mut s1,
                        );
                        let mut s2 = ObsRegistry::default();
                        let b = analyze_trace_interned(
                            &Bits, &p, &d0, trace, not_q, &cfg, &mut shared, &mut s2,
                        );
                        match (a, b) {
                            (Ok(x), Ok(y)) => {
                                assert_eq!(x.to_dnf(), y.to_dnf(), "warm cache diverged on {trace:?}");
                                assert_eq!(x.restrict(), y.restrict());
                                compared += 1;
                            }
                            (Err(x), Err(y)) => assert_eq!(x, y),
                            (x, y) => panic!(
                                "outcome diverged on {trace:?}: fresh {:?} vs warm {:?}",
                                x.map(|f| f.to_dnf()),
                                y.map(|f| f.to_dnf())
                            ),
                        }
                    }
                }
            }
        }
        assert!(compared >= 100, "expected broad coverage, got {compared}");
    }

    /// A second call over the same trace/query — the shape of every CEGAR
    /// iteration after the first — must be served entirely from the
    /// cache: no wp misses, even under a different abstraction.
    #[test]
    fn warm_cache_serves_wp_without_misses() {
        let trace = [null(0), copy(1, 0), havoc(2), null(2)];
        let not_q = Formula::prim(BP::Bit(1));
        let cfg = BeamConfig::default();
        let mut cache = InternCache::new();
        let mut obs = ObsRegistry::default();
        analyze_trace_interned(&Bits, &0b1, &0, &trace, &not_q, &cfg, &mut cache, &mut obs)
            .unwrap();
        assert!(obs.get(Counter::WpMisses) > 0, "cold cache must miss: {obs:?}");
        let misses_after_cold = obs.get(Counter::WpMisses);
        analyze_trace_interned(&Bits, &0b10, &0b1, &trace, &not_q, &cfg, &mut cache, &mut obs)
            .unwrap();
        assert_eq!(
            obs.get(Counter::WpMisses),
            misses_after_cold,
            "warm cache must serve every wp from the memo: {obs:?}"
        );
        assert!(obs.get(Counter::WpHits) > 0);
    }

    #[test]
    fn wp_memo_hits_on_repeated_atoms() {
        // A long trace over a few distinct atoms: wp conversions must be
        // served from the memo after their first computation.
        let trace: Vec<Atom> = (0..12).map(|i| if i % 2 == 0 { null(0) } else { copy(1, 0) }).collect();
        let not_q = Formula::prim(BP::Bit(1));
        let mut obs = ObsRegistry::default();
        let p = 0b1u32;
        let mut cache = InternCache::new();
        let r = analyze_trace_interned(
            &Bits, &p, &0, &trace, &not_q, &BeamConfig::default(), &mut cache, &mut obs,
        );
        assert!(r.is_ok());
        assert!(obs.get(Counter::WpHits) > obs.get(Counter::WpMisses), "memo ineffective: {obs:?}");
        assert!(obs.get(Counter::CubesBuilt) > 0);
    }

    #[test]
    fn signature_fast_path_fires_on_trivial_matrices() {
        // BP uses the default implies/contradicts (identity/none), so the
        // table is trivial and disjoint signatures must short-circuit
        // subsumption checks.
        let not_q = Formula::or(vec![
            Formula::and(vec![Formula::prim(BP::Bit(0)), Formula::prim(BP::Bit(1))]),
            Formula::and(vec![Formula::prim(BP::Bit(2)), Formula::prim(BP::Bit(3))]),
            Formula::prim(BP::Bit(4)),
        ]);
        let trace = [null(0)];
        let mut obs = ObsRegistry::default();
        let mut cache = InternCache::new();
        let r = analyze_trace_interned(
            &Bits,
            &0b1,
            &0b11111,
            &trace,
            &not_q,
            &BeamConfig::exhaustive(),
            &mut cache,
            &mut obs,
        );
        assert!(r.is_ok());
        assert!(obs.get(Counter::SubsumptionFastRejects) > 0, "no fast rejects: {obs:?}");
        assert!(obs.get(Counter::SubsumptionFastRejects) <= obs.get(Counter::SubsumptionChecks));
    }

    /// A primitive with an *asymmetric* contradiction, to pin down the
    /// existing→new direction of the insert clash mirror and the matrix
    /// fallback in subsumption.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct AP(u8);

    impl fmt::Display for AP {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "a{}", self.0)
        }
    }

    impl Primitive for AP {
        type Param = u32;
        type State = u32;
        fn holds(&self, _p: &u32, d: &u32) -> bool {
            (d >> self.0) & 1 == 1
        }
        fn eval_state(&self, d: &u32) -> Option<bool> {
            Some((d >> self.0) & 1 == 1)
        }
        fn param_atom(&self) -> Option<(usize, bool)> {
            None
        }
        fn implies(&self, other: &Self) -> bool {
            // a0 ⇒ a1 (and reflexivity): a non-identity matrix.
            self == other || (self.0 == 0 && other.0 == 1)
        }
        fn contradicts(&self, other: &Self) -> bool {
            // Asymmetric on purpose: only a2 contradicts a3.
            self.0 == 2 && other.0 == 3
        }
    }

    #[test]
    fn nontrivial_matrices_mirror_tree_cube_ops() {
        // Build a table over prims a0..a3 via a formula mentioning them
        // all; no atoms are needed.
        struct C;
        impl MetaClient for C {
            type Prim = AP;
            fn transfer(&self, _p: &u32, _a: &Atom, d: &u32) -> u32 {
                *d
            }
            fn wp_prim(&self, _a: &Atom, prim: &AP) -> Formula<AP> {
                Formula::prim(*prim)
            }
        }
        let not_q = Formula::or(vec![
            Formula::prim(AP(0)),
            Formula::prim(AP(1)),
            Formula::prim(AP(2)),
            Formula::prim(AP(3)),
        ]);
        let mut cache: InternCache<AP> = InternCache::new();
        let (_, fresh) = cache.register_atoms(&[]);
        cache.close_universe(&C, &fresh, &not_q);
        cache.rebuild_table();
        let t = &cache.table.as_ref().unwrap().core;
        assert!(t.any_contradiction);
        assert!(!t.trivial);

        let mk = |lits: &[(u8, bool)]| {
            let mut c = ICube::top();
            for &(i, pos) in lits {
                assert!(c.insert(plit(i as u32, pos), t));
            }
            c
        };
        let mk_tree = |lits: &[(u8, bool)]| {
            let mut c = Cube::top();
            for &(i, pos) in lits {
                assert!(c.insert(Lit { prim: AP(i), pos }));
            }
            c
        };
        let mut obs = ObsRegistry::default();
        // Implication through the non-identity matrix: {a0} ⇒ {a1}.
        assert!(mk(&[(0, true)]).implies(&mk(&[(1, true)]), t, &mut obs));
        assert!(!mk(&[(1, true)]).implies(&mk(&[(0, true)]), t, &mut obs));
        // Positive a2 implies ¬a3 via the contradiction matrix.
        assert!(mk(&[(2, true)]).implies(&mk(&[(3, false)]), t, &mut obs));
        // Insert clash direction: existing a2 clashes with new a3 …
        let mut c = mk(&[(2, true)]);
        assert!(!c.insert(plit(3, true), t));
        assert!(!mk_tree(&[(2, true)]).insert(Lit { prim: AP(3), pos: true }));
        // … but existing a3 accepts new a2 (the tree's asymmetry).
        let mut c = mk(&[(3, true)]);
        assert!(c.insert(plit(2, true), t));
        assert!(mk_tree(&[(3, true)]).insert(Lit { prim: AP(2), pos: true }));
        // Conjoin mirrors the same order-sensitivity.
        assert!(mk(&[(2, true)]).conjoin(&mk(&[(3, true)]), t).is_none());
        assert!(mk_tree(&[(2, true)]).conjoin(&mk_tree(&[(3, true)])).is_none());
    }

    /// Evicting unstable memo entries and measuring the cache are pure
    /// accelerator operations: byte estimates are deterministic, and a
    /// post-eviction re-run produces bit-identical output.
    #[test]
    fn approx_bytes_and_eviction_preserve_outputs() {
        let trace = [null(0), copy(1, 0), havoc(2), null(2)];
        let not_q = Formula::prim(BP::Bit(1));
        let cfg = BeamConfig::with_k(1);
        let mut cache = InternCache::new();
        assert_eq!(cache.approx_bytes(), InternCache::<BP>::new().approx_bytes());
        let mut obs = ObsRegistry::default();
        let a = analyze_trace_interned(&Bits, &0b1, &0, &trace, &not_q, &cfg, &mut cache, &mut obs)
            .unwrap();
        let warm = cache.approx_bytes();
        assert!(warm > 0);
        assert_eq!(warm, cache.approx_bytes(), "estimate must be deterministic");
        cache.evict_unstable();
        assert!(cache.approx_bytes() <= warm);
        let b = analyze_trace_interned(&Bits, &0b1, &0, &trace, &not_q, &cfg, &mut cache, &mut obs)
            .unwrap();
        assert_eq!(a.to_dnf(), b.to_dnf(), "eviction must not change outputs");
        assert_eq!(a.restrict(), b.restrict());
    }

    /// A primitive with default (identity) `implies` but a real
    /// `contradicts` pair — the escape domain's shape, where the table is
    /// `implies_identity` but not `trivial`. This is the tier whose
    /// fast-reject was historically dead (the full-signature check only
    /// guarded the `trivial` tier), so every production subsumption scan
    /// walked the literals.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct IP(u8);

    impl fmt::Display for IP {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "i{}", self.0)
        }
    }

    impl Primitive for IP {
        type Param = u32;
        type State = u32;
        fn holds(&self, _p: &u32, d: &u32) -> bool {
            (d >> self.0) & 1 == 1
        }
        fn eval_state(&self, d: &u32) -> Option<bool> {
            Some((d >> self.0) & 1 == 1)
        }
        fn param_atom(&self) -> Option<(usize, bool)> {
            None
        }
        fn contradicts(&self, other: &Self) -> bool {
            self.0 == 2 && other.0 == 3
        }
    }

    #[test]
    fn positive_signature_fast_rejects_on_identity_matrices() {
        struct C;
        impl MetaClient for C {
            type Prim = IP;
            fn transfer(&self, _p: &u32, _a: &Atom, d: &u32) -> u32 {
                *d
            }
            fn wp_prim(&self, _a: &Atom, prim: &IP) -> Formula<IP> {
                Formula::prim(*prim)
            }
        }
        let not_q = Formula::or(vec![
            Formula::prim(IP(0)),
            Formula::prim(IP(1)),
            Formula::prim(IP(2)),
            Formula::prim(IP(3)),
        ]);
        let mut cache: InternCache<IP> = InternCache::new();
        let (_, fresh) = cache.register_atoms(&[]);
        cache.close_universe(&C, &fresh, &not_q);
        cache.rebuild_table();
        let t = &cache.table.as_ref().unwrap().core;
        assert!(t.implies_identity && t.any_contradiction && !t.trivial, "not the hedc shape");

        let mk = |lits: &[(u8, bool)]| {
            let mut c = ICube::top();
            for &(i, pos) in lits {
                assert!(c.insert(plit(i as u32, pos), t));
            }
            c
        };
        let mut obs = ObsRegistry::default();
        // Non-subsuming pair: {i0} cannot imply {i1} — i1's prim never
        // occurs in {i0}, so the positive-occurrence signature refutes it
        // in one word op.
        assert!(!mk(&[(0, true)]).implies(&mk(&[(1, true)]), t, &mut obs));
        assert_eq!(obs.get(Counter::SubsumptionFastRejects), 1, "fast reject must fire: {obs:?}");
        // The tree oracle agrees it is a non-implication.
        let mk_tree = |lits: &[(u8, bool)]| {
            let mut c = Cube::top();
            for &(i, pos) in lits {
                assert!(c.insert(Lit { prim: IP(i), pos }));
            }
            c
        };
        assert!(!mk_tree(&[(0, true)]).implies(&mk_tree(&[(1, true)])));
        // Negative literals are excluded from `pos_sig`: i2 ⇒ ¬i3 goes
        // through the contradiction fallback, never the reject.
        assert!(mk(&[(2, true)]).implies(&mk(&[(3, false)]), t, &mut obs));
        assert!(mk_tree(&[(2, true)]).implies(&mk_tree(&[(3, false)])));
        // A genuinely subsuming pair passes untouched.
        assert!(mk(&[(0, true), (1, true)]).implies(&mk(&[(0, true)]), t, &mut obs));
        assert_eq!(obs.get(Counter::SubsumptionFastRejects), 1, "only the non-pair rejects");
        assert_eq!(obs.get(Counter::SubsumptionChecks), 3);
    }

    /// Caches wired to one shared [`WarmStore`] must be observationally
    /// identical to cold caches on the same inputs: same DNFs, same
    /// restrictions, and the same wp/cube counters — the store only moves
    /// who derives a formula first, which is what keeps the batch trace
    /// stream byte-identical across job counts.
    #[test]
    fn warm_store_preserves_outputs_and_counters() {
        let cfg = BeamConfig::default();
        let warm = Arc::new(WarmStore::new(4));
        let mut compared = 0usize;
        for trace in &test_traces() {
            for not_q in &test_not_qs() {
                for p in 0..4u32 {
                    let d0 = p ^ 0b11;
                    let mut s_cold = ObsRegistry::default();
                    let mut cold = InternCache::new();
                    let a = analyze_trace_interned(
                        &Bits, &p, &d0, trace, not_q, &cfg, &mut cold, &mut s_cold,
                    );
                    let mut s_warm = ObsRegistry::default();
                    let mut warmed = InternCache::with_warm(warm.clone());
                    let b = analyze_trace_interned(
                        &Bits, &p, &d0, trace, not_q, &cfg, &mut warmed, &mut s_warm,
                    );
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.to_dnf(), y.to_dnf(), "warm store diverged on {trace:?}");
                            assert_eq!(x.restrict(), y.restrict());
                            compared += 1;
                        }
                        (Err(x), Err(y)) => assert_eq!(x, y),
                        (x, y) => panic!(
                            "outcome diverged on {trace:?}: cold {:?} vs warm {:?}",
                            x.map(|f| f.to_dnf()),
                            y.map(|f| f.to_dnf())
                        ),
                    }
                    for c in [
                        Counter::WpHits,
                        Counter::WpMisses,
                        Counter::CubesBuilt,
                        Counter::SubsumptionChecks,
                        Counter::SubsumptionFastRejects,
                    ] {
                        assert_eq!(
                            s_cold.get(c),
                            s_warm.get(c),
                            "counter {c:?} drifted under the warm store on {trace:?}"
                        );
                    }
                }
            }
        }
        assert!(compared >= 30, "expected broad coverage, got {compared}");
    }

    /// `meta_jobs > 1` must be invisible in the results: same cubes, same
    /// restriction, same `CubesBuilt`, at every tested degree — including
    /// an input wide enough (8 × 10 cross product) to actually enter the
    /// parallel `product_i` path.
    #[test]
    fn meta_jobs_outputs_are_bit_identical_to_serial() {
        let wide_not_q = Formula::and(vec![
            Formula::or((0..8).map(|i| Formula::prim(BP::Bit(i))).collect()),
            Formula::or((8..18).map(|i| Formula::prim(BP::Bit(i))).collect()),
        ]);
        let mut not_qs = test_not_qs();
        not_qs.push(wide_not_q);
        let cfgs = [BeamConfig::default(), BeamConfig::exhaustive()];
        for meta_jobs in [2, 4] {
            for trace in &test_traces() {
                for not_q in &not_qs {
                    for cfg in &cfgs {
                        let (p, d0) = (0b101u32, 0x3ffffu32);
                        let mut s1 = ObsRegistry::default();
                        let mut c1 = InternCache::new();
                        let serial = analyze_trace_interned(
                            &Bits, &p, &d0, trace, not_q, cfg, &mut c1, &mut s1,
                        );
                        let mut s2 = ObsRegistry::default();
                        let mut c2 = InternCache::new();
                        let par = analyze_trace_interned_jobs(
                            &Bits, &p, &d0, trace, not_q, cfg, &mut c2, &mut s2, meta_jobs,
                        );
                        match (serial, par) {
                            (Ok(x), Ok(y)) => {
                                assert_eq!(
                                    x.to_dnf(),
                                    y.to_dnf(),
                                    "meta_jobs={meta_jobs} diverged on {trace:?}"
                                );
                                assert_eq!(x.restrict(), y.restrict());
                            }
                            (Err(x), Err(y)) => assert_eq!(x, y),
                            (x, y) => panic!(
                                "outcome diverged at meta_jobs={meta_jobs} on {trace:?}: {:?} vs {:?}",
                                x.map(|f| f.to_dnf()),
                                y.map(|f| f.to_dnf())
                            ),
                        }
                        assert_eq!(
                            s1.get(Counter::CubesBuilt),
                            s2.get(Counter::CubesBuilt),
                            "CubesBuilt drifted at meta_jobs={meta_jobs} on {trace:?}"
                        );
                        assert_eq!(s1.get(Counter::WpHits), s2.get(Counter::WpHits));
                        assert_eq!(s1.get(Counter::WpMisses), s2.get(Counter::WpMisses));
                    }
                }
            }
        }
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1, 2]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1], &[]));
    }
}
