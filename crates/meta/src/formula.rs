//! Formulas over meta-analysis primitives, and their DNF representation.

use std::collections::BTreeSet;
use std::fmt;

/// A primitive formula of the meta-analysis domain `M`.
///
/// Primitives denote sets of pairs `(p, d)` of abstraction and forward
/// abstract state, via [`Primitive::holds`] (the paper's `σ`). The
/// type-state client uses `err`, `unalloc`, `var(x)`, `type(s)`,
/// `param(x)`; the thread-escape client uses `h.o`, `v.o`, `f.o`.
pub trait Primitive: Clone + Eq + Ord + std::hash::Hash + fmt::Debug + fmt::Display {
    /// The abstraction parameter type `P`.
    type Param;
    /// The forward abstract state type `D`.
    type State;

    /// Membership in `σ(self)`.
    fn holds(&self, p: &Self::Param, d: &Self::State) -> bool;

    /// Evaluates using the state only; `None` if the primitive constrains
    /// the parameter (then [`Primitive::param_atom`] must return `Some`).
    fn eval_state(&self, d: &Self::State) -> Option<bool>;

    /// For parameter primitives: the solver atom index and the polarity
    /// with which the primitive asserts it (e.g. `h↦E` is `(h, false)`
    /// because `E` is the complement of `L`).
    fn param_atom(&self) -> Option<(usize, bool)>;

    /// Syntactic implication `self ⇒ other`, used to detect subsumed
    /// disjuncts in `simplify`. May be incomplete; defaults to equality.
    fn implies(&self, other: &Self) -> bool {
        self == other
    }

    /// Returns `true` if `self ∧ other` is unsatisfiable (beyond the
    /// built-in `π ∧ ¬π` check). May be incomplete; defaults to `false`.
    fn contradicts(&self, other: &Self) -> bool {
        let _ = other;
        false
    }
}

/// A boolean formula over primitives `P`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula<P> {
    /// Constant true (`σ = P × D`).
    True,
    /// Constant false (`σ = ∅`).
    False,
    /// A primitive.
    Prim(P),
    /// Negation.
    Not(Box<Formula<P>>),
    /// Conjunction (true if empty).
    And(Vec<Formula<P>>),
    /// Disjunction (false if empty).
    Or(Vec<Formula<P>>),
}

impl<P: Primitive> Formula<P> {
    /// A primitive formula.
    pub fn prim(p: P) -> Self {
        Formula::Prim(p)
    }

    /// A negated primitive.
    pub fn nprim(p: P) -> Self {
        Formula::Not(Box::new(Formula::Prim(p)))
    }

    /// Conjunction with constant folding.
    pub fn and(mut parts: Vec<Formula<P>>) -> Self {
        parts.retain(|f| *f != Formula::True);
        if parts.contains(&Formula::False) {
            return Formula::False;
        }
        match parts.len() {
            0 => Formula::True,
            1 => parts.pop().unwrap(),
            _ => Formula::And(parts),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(mut parts: Vec<Formula<P>>) -> Self {
        parts.retain(|f| *f != Formula::False);
        if parts.contains(&Formula::True) {
            return Formula::True;
        }
        match parts.len() {
            0 => Formula::False,
            1 => parts.pop().unwrap(),
            _ => Formula::Or(parts),
        }
    }

    /// Negation with constant folding.
    // An associated constructor like `and`/`or`, not a `!` overload on
    // `self` — the by-value signature is the point.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula<P>) -> Self {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Membership of `(p, d)` in `σ(self)`.
    pub fn holds(&self, p: &P::Param, d: &P::State) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Prim(prim) => prim.holds(p, d),
            Formula::Not(f) => !f.holds(p, d),
            Formula::And(fs) => fs.iter().all(|f| f.holds(p, d)),
            Formula::Or(fs) => fs.iter().any(|f| f.holds(p, d)),
        }
    }
}

impl<P: Primitive> fmt::Display for Formula<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Prim(p) => write!(f, "{p}"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A literal: a primitive or its negation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit<P> {
    /// The primitive.
    pub prim: P,
    /// `true` for the positive literal.
    pub pos: bool,
}

impl<P: Primitive> Lit<P> {
    /// Membership of `(p, d)` in `σ(self)`.
    pub fn holds(&self, p: &P::Param, d: &P::State) -> bool {
        self.prim.holds(p, d) == self.pos
    }

    /// Syntactic implication `self ⇒ other` (incomplete).
    pub fn implies(&self, other: &Lit<P>) -> bool {
        match (self.pos, other.pos) {
            (true, true) => self.prim.implies(&other.prim),
            (false, false) => other.prim.implies(&self.prim),
            // π ⇒ ¬π' when π contradicts π'.
            (true, false) => self.prim.contradicts(&other.prim),
            (false, true) => false,
        }
    }
}

impl<P: Primitive> fmt::Display for Lit<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos {
            write!(f, "{}", self.prim)
        } else {
            write!(f, "¬{}", self.prim)
        }
    }
}

/// A conjunction of literals (one DNF disjunct).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube<P: Ord>(BTreeSet<Lit<P>>);

impl<P: Primitive> Cube<P> {
    /// The empty cube (`true`).
    pub fn top() -> Self {
        Cube(BTreeSet::new())
    }

    /// Rebuilds a cube from literals already known to be mutually
    /// consistent, bypassing [`Cube::insert`]'s clash checks. Used by the
    /// interned kernel when exporting back to the tree form: its cubes
    /// were built under the same clash rules, but re-inserting them in a
    /// different order could trip the (asymmetric) contradiction check.
    pub(crate) fn from_lits_unchecked(lits: impl IntoIterator<Item = Lit<P>>) -> Self {
        Cube(lits.into_iter().collect())
    }

    /// Inserts a literal; returns `false` if this makes the cube
    /// syntactically unsatisfiable (contains the opposite literal, or two
    /// contradicting positive primitives).
    pub fn insert(&mut self, lit: Lit<P>) -> bool {
        let clash = self.0.iter().any(|l| {
            (l.prim == lit.prim && l.pos != lit.pos)
                || (l.pos && lit.pos && l.prim.contradicts(&lit.prim))
        });
        if clash {
            return false;
        }
        self.0.insert(lit);
        true
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the cube is the constant `true`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the literals.
    pub fn lits(&self) -> impl Iterator<Item = &Lit<P>> {
        self.0.iter()
    }

    /// Membership of `(p, d)` in `σ(self)`.
    pub fn holds(&self, p: &P::Param, d: &P::State) -> bool {
        self.0.iter().all(|l| l.holds(p, d))
    }

    /// Conjunction of two cubes; `None` if syntactically unsatisfiable.
    pub fn conjoin(&self, other: &Cube<P>) -> Option<Cube<P>> {
        let mut out = self.clone();
        for l in other.lits() {
            if !out.insert(l.clone()) {
                return None;
            }
        }
        Some(out)
    }

    /// Syntactic implication `self ⇒ other`: every literal of `other` is
    /// implied by some literal of `self` (the paper's `⊑` order).
    pub fn implies(&self, other: &Cube<P>) -> bool {
        other
            .0
            .iter()
            .all(|lo| self.0.iter().any(|ls| ls.implies(lo)))
    }
}

impl<P: Primitive> fmt::Display for Cube<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "true");
        }
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A formula in disjunctive normal form: a disjunction of [`Cube`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dnf<P: Ord>(pub Vec<Cube<P>>);

impl<P: Primitive> Dnf<P> {
    /// The constant `false`.
    pub fn bottom() -> Self {
        Dnf(Vec::new())
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the DNF is the constant `false`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership of `(p, d)` in `σ(self)`.
    pub fn holds(&self, p: &P::Param, d: &P::State) -> bool {
        self.0.iter().any(|c| c.holds(p, d))
    }

    /// Converts back to a tree [`Formula`].
    pub fn to_formula(&self) -> Formula<P> {
        Formula::or(
            self.0
                .iter()
                .map(|c| {
                    Formula::and(
                        c.lits()
                            .map(|l| {
                                if l.pos {
                                    Formula::prim(l.prim.clone())
                                } else {
                                    Formula::nprim(l.prim.clone())
                                }
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

impl<P: Primitive> fmt::Display for Dnf<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "false");
        }
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if c.len() > 1 && self.0.len() > 1 {
                write!(f, "({c})")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}
