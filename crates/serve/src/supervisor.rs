//! The supervision layer: resident analysis state, per-request panic
//! isolation, cache quarantine by generation, retry/backoff, the result
//! journal, and the drain flag.
//!
//! One [`Supervisor`] is shared by every connection of a daemon. Warm
//! state lives at two levels with different blast radii:
//!
//! * the **forward cache** ([`ForwardCache`]) is process-wide and tagged
//!   with a *generation* number. A worker panic retires the whole
//!   generation — requests already running keep their `Arc` and finish,
//!   but every later request sees a fresh cache (and the retired one is
//!   re-warmed off the request path);
//! * the **interner** ([`InternCache`]) is per *connection* (it is
//!   mutable and cheap to rebuild). It carries the generation it was
//!   built under and is discarded whenever the generation has moved on,
//!   or whenever its own connection's request unwound mid-mutation.
//!
//! Finished verdicts are journaled to a standard batch checkpoint file
//! (flushed per record), so a killed daemon resumes without re-solving;
//! transient outcomes (engine faults, deadline hits) are deliberately
//! *not* journaled — a restart should retry them.

use crate::proto::{parse_request, LineBuilder, Op, Request, Target};
use pda_lang::{CallId, MethodId, Program};
use pda_tracer::{
    compact_checkpoint, default_jobs, load_checkpoint, outcome_tag,
    solve_queries_batch_checkpointed, solve_query_cached_warm, BatchConfig, CheckpointWriter,
    ForwardCache, InternCache, MetaStats, Outcome, ParamCodec, Query, QueryObs, QueryResult,
    RetryPolicy, TracerClient, TracerConfig, Unresolved,
};
use pda_util::{faultplane, heartbeat, Deadline, Event, FileSink, TraceSink};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A watched attempt's success payload: the verdict, the interner the
/// worker used (handed back so the connection keeps it), and the
/// query's observations. `Err` carries the stall-detection detail.
type WatchedSolve<P, R> = Result<(QueryResult<P>, InternCache<R>, QueryObs), String>;

/// Daemon-side policy knobs (everything except the transport).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-query tracer configuration shared by all requests.
    pub tracer: TracerConfig,
    /// Worker threads for the `batch` op.
    pub jobs: usize,
    /// Upper bound on threads the daemon may occupy, mirroring
    /// [`BatchConfig::thread_cap`]: the `batch` op passes it through to
    /// the batch scheduler, and the `solve` op clamps the in-query
    /// meta-kernel degree (`tracer.meta_jobs`) by it — the batch workers
    /// already honored the cap, but a direct `solve` request used to
    /// reach `analyze_trace_interned_jobs` with the unclamped degree.
    /// `None` (the default) clamps to the machine's available
    /// parallelism, exactly like the batch scheduler.
    pub thread_cap: Option<usize>,
    /// Default per-request wall-clock deadline in milliseconds, used
    /// when the request carries none.
    pub deadline_ms: Option<u64>,
    /// Deterministic backoff ladder for transient faults. With
    /// [`RetryPolicy::retry_deadline`] set, deadline hits retry too
    /// (each attempt gets a fresh deadline, so a stalled forward run
    /// under escalation can recover).
    pub retry: Option<RetryPolicy>,
    /// Honor `"inject":"panic"` requests (fault-injection soaks and the
    /// CI smoke only; never enable for real service).
    pub allow_inject: bool,
    /// Watchdog budget for non-cooperative stalls, in milliseconds.
    /// When set (and the transport provides a [`SolveScope`]), every
    /// solve attempt runs on its own worker thread whose heartbeat —
    /// one beat per CEGAR iteration — is monitored; a worker that makes
    /// no progress for this long is abandoned: the request gets a
    /// structured `engine_stall` reply, the cache generation is
    /// quarantined, and [`Supervisor::watchdog_fired`] counts it.
    /// `None` (the default) runs every attempt inline, as before.
    pub watchdog_ms: Option<u64>,
}

/// A capability handed in by the transport: run a closure on a thread
/// the transport owns (a scoped thread of the accept loop). The
/// watchdog needs it so a non-cooperatively stalled attempt can be
/// *abandoned* — the worker keeps sleeping harmlessly inside the
/// transport's scope — without hanging the connection or the daemon.
pub trait SolveScope<'env> {
    /// Runs `f` on a transport-owned thread.
    fn spawn(&self, f: Box<dyn FnOnce() + Send + 'env>);
}

/// One watched in-flight request, visible while its worker runs.
struct Inflight {
    index: usize,
    started: Instant,
    beat: Arc<AtomicU64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tracer: TracerConfig::default(),
            jobs: 1,
            thread_cap: None,
            deadline_ms: None,
            retry: None,
            allow_inject: false,
            watchdog_ms: None,
        }
    }
}

/// Per-connection resident state: the interner survives across requests
/// on one connection, but only within one cache generation.
pub struct ConnState<P: pda_meta::Primitive> {
    icache: InternCache<P>,
    generation: u64,
}

impl<P: pda_meta::Primitive> ConnState<P> {
    /// A fresh connection joining the given generation.
    pub fn new(generation: u64) -> ConnState<P> {
        ConnState { icache: InternCache::default(), generation }
    }
}

/// The outcome of handling one request line.
#[derive(Debug)]
pub struct Reply {
    /// The JSON response line (no trailing newline).
    pub text: String,
    /// The handler quarantined the warm caches; the transport should
    /// rebuild the new generation ([`Supervisor::warm_generation`]) off
    /// the request path.
    pub quarantine: bool,
    /// The request asked the daemon to drain and exit.
    pub shutdown: bool,
}

impl Reply {
    fn text(text: String) -> Reply {
        Reply { text, quarantine: false, shutdown: false }
    }
}

/// Journal state: the path plus the currently open writer. The writer is
/// closed (flushed) around the `batch` op, which owns the file while it
/// runs, and reopened in append mode afterwards.
struct Journal {
    path: Option<PathBuf>,
    writer: Option<CheckpointWriter>,
}

/// The shared supervision core. See the module docs for the state model.
pub struct Supervisor<'p, C: TracerClient> {
    program: &'p Program,
    callees: &'p (dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &'p C,
    queries: Vec<Query<C::Prim>>,
    labels: Vec<String>,
    config: ServeConfig,
    cache: Mutex<Arc<ForwardCache<'p, C::State>>>,
    generation: AtomicU64,
    served: AtomicU64,
    faults: AtomicU64,
    quarantines: AtomicU64,
    watchdog_fired: AtomicU64,
    inflight: Mutex<HashMap<u64, Inflight>>,
    next_req: AtomicU64,
    drain: Arc<AtomicBool>,
    journal: Mutex<Journal>,
    answered: Mutex<HashMap<usize, QueryResult<C::Param>>>,
    trace: Option<FileSink>,
}

impl<'p, C> Supervisor<'p, C>
where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    /// Builds a supervisor over resident program artifacts. `labels[i]`
    /// names `queries[i]` for `"query":label` requests and responses.
    ///
    /// # Panics
    ///
    /// Panics if `queries` and `labels` disagree in length.
    pub fn new(
        program: &'p Program,
        callees: &'p (dyn Fn(CallId) -> Vec<MethodId> + Sync),
        client: &'p C,
        queries: Vec<Query<C::Prim>>,
        labels: Vec<String>,
        mut config: ServeConfig,
    ) -> Supervisor<'p, C> {
        assert_eq!(queries.len(), labels.len(), "one label per query");
        // Clamp the in-query meta-kernel degree by the thread cap once,
        // up front, with the same expression the batch scheduler applies
        // to its worker count — so a direct `solve` request can never
        // occupy more kernel threads than a `batch` op would.
        config.tracer.meta_jobs = config
            .tracer
            .meta_jobs
            .min(config.thread_cap.unwrap_or_else(default_jobs))
            .max(1);
        Supervisor {
            program,
            callees,
            client,
            queries,
            labels,
            config,
            cache: Mutex::new(Arc::new(ForwardCache::new())),
            generation: AtomicU64::new(0),
            served: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            watchdog_fired: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(0),
            drain: Arc::new(AtomicBool::new(false)),
            journal: Mutex::new(Journal { path: None, writer: None }),
            answered: Mutex::new(HashMap::new()),
            trace: None,
        }
    }

    /// Streams per-request structured events (and one `query_resolved`
    /// line per request) to `sink`.
    pub fn attach_trace(&mut self, sink: FileSink) {
        self.trace = Some(sink);
    }

    /// The effective per-request tracer configuration (after the
    /// [`ServeConfig::thread_cap`] clamp on `meta_jobs`).
    pub fn tracer_config(&self) -> &TracerConfig {
        &self.config.tracer
    }

    /// Attaches a journal file. An existing file is loaded (finished
    /// verdicts become served-from-memory resumes), compacted — which
    /// also drops any torn tail from a crash mid-write — and kept open
    /// for appending. Returns how many queries were resumed.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the file exists but cannot be
    /// trusted (wrong batch, interior corruption) or rewritten.
    pub fn attach_journal(&mut self, path: PathBuf) -> Result<usize, String> {
        let mut restored = HashMap::new();
        if path.exists() {
            restored = load_checkpoint::<C::Param>(&path, self.queries.len())
                .map_err(|e| format!("journal {}: {e}", path.display()))?;
        }
        // Compaction is crash-safe: the surviving records are rewritten
        // to `<path>.tmp`, fsynced, and renamed over the journal — a
        // crash mid-rewrite leaves the old journal untouched.
        let records: Vec<(usize, &QueryResult<C::Param>)> =
            restored.iter().map(|(&i, r)| (i, r)).collect();
        let writer = compact_checkpoint(&path, self.queries.len(), &records)
            .map_err(|e| format!("journal {}: {e}", path.display()))?;
        // Only durable verdicts are served from memory; a journaled
        // transient (a batch op records those too) re-runs on request.
        let answered: HashMap<usize, QueryResult<C::Param>> =
            restored.into_iter().filter(|(_, r)| Self::durable(&r.outcome)).collect();
        let resumed = answered.len();
        *self.answered.lock().expect("answered poisoned") = answered;
        *self.journal.lock().expect("journal poisoned") =
            Journal { path: Some(path), writer: Some(writer) };
        Ok(resumed)
    }

    /// The current cache generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// A clone of the drain flag (the daemon wires signals into it; the
    /// `batch` op uses it as its cancel signal).
    pub fn drain_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// Whether admission has stopped.
    pub fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// Requests successfully served (including memo hits).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Requests that resolved as engine faults (after retries).
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }

    /// Cache generations retired after a panic.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::SeqCst)
    }

    /// Non-cooperatively stalled requests reclaimed by the watchdog.
    pub fn watchdog_fired(&self) -> u64 {
        self.watchdog_fired.load(Ordering::SeqCst)
    }

    /// Watched requests currently running on worker threads.
    pub fn inflight(&self) -> usize {
        self.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Flushes and closes the journal writer (end of daemon life).
    pub fn close_journal(&self) {
        self.journal.lock().expect("journal poisoned").writer = None;
    }

    /// Handles one request line against one connection's state. Solve
    /// attempts run inline on the calling thread: without a transport
    /// scope to park abandoned workers in, the watchdog cannot engage
    /// (equivalent to `watchdog_ms: None`).
    pub fn handle_line(&self, conn: &mut ConnState<C::Prim>, line: &str) -> Reply {
        self.dispatch(conn, line, None)
    }

    /// Like [`Supervisor::handle_line`], but with a transport-owned
    /// [`SolveScope`]: when [`ServeConfig::watchdog_ms`] is set, solve
    /// attempts run on scope threads under heartbeat supervision.
    pub fn handle_line_watched<'a>(
        &'a self,
        conn: &mut ConnState<C::Prim>,
        line: &str,
        scope: &dyn SolveScope<'a>,
    ) -> Reply {
        self.dispatch(conn, line, Some(scope))
    }

    fn dispatch<'a>(
        &'a self,
        conn: &mut ConnState<C::Prim>,
        line: &str,
        scope: Option<&dyn SolveScope<'a>>,
    ) -> Reply {
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(reason) => {
                return Reply::text(
                    LineBuilder::new()
                        .str("ok", "false")
                        .str("error", "bad_request")
                        .str("detail", &reason)
                        .num("generation", u128::from(self.generation()))
                        .finish(),
                )
            }
        };
        match &req.op {
            Op::Health => Reply::text(self.health_line(&req)),
            Op::Shutdown => {
                self.drain.store(true, Ordering::SeqCst);
                let text = LineBuilder::new()
                    .opt_id(req.id.as_deref())
                    .str("ok", "true")
                    .str("op", "shutdown")
                    .str("draining", "true")
                    .num("generation", u128::from(self.generation()))
                    .finish();
                Reply { text, quarantine: false, shutdown: true }
            }
            Op::Batch => Reply::text(self.batch_line(&req)),
            Op::Solve { .. } => self.solve_reply(conn, &req, scope),
        }
    }

    fn health_line(&self, req: &Request) -> String {
        LineBuilder::new()
            .opt_id(req.id.as_deref())
            .str("ok", "true")
            .str("op", "health")
            .str("ready", if self.draining() { "false" } else { "true" })
            .num("queries", self.queries.len() as u128)
            .num("generation", u128::from(self.generation()))
            .num("served", u128::from(self.served()))
            .num("faults", u128::from(self.faults()))
            .num("quarantines", u128::from(self.quarantines()))
            .num("watchdog_fired", u128::from(self.watchdog_fired()))
            .num("inflight", self.inflight() as u128)
            .num("faults_injected", u128::from(faultplane::faults_injected()))
            .num("io_faults", u128::from(faultplane::io_faults()))
            .finish()
    }

    fn error_line(&self, req: &Request, error: &str, detail: &str) -> String {
        LineBuilder::new()
            .opt_id(req.id.as_deref())
            .str("ok", "false")
            .str("op", "solve")
            .str("error", error)
            .str("detail", detail)
            .num("generation", u128::from(self.generation()))
            .finish()
    }

    fn resolve(&self, target: &Target) -> Option<usize> {
        match target {
            Target::Index(i) => (*i < self.queries.len()).then_some(*i),
            Target::Label(label) => self.labels.iter().position(|l| l == label),
        }
    }

    /// Whether an outcome is durable enough to journal and memoize:
    /// engine faults, deadline hits, and drains are transient (a retry
    /// or a restart may do better), everything else is a final verdict.
    fn durable(outcome: &Outcome<C::Param>) -> bool {
        !matches!(
            outcome,
            Outcome::Unresolved(Unresolved::EngineFault(_))
                | Outcome::Unresolved(Unresolved::DeadlineExceeded)
                | Outcome::Unresolved(Unresolved::Drained)
        )
    }

    fn record(&self, index: usize, r: &QueryResult<C::Param>) {
        let mut j = self.journal.lock().expect("journal poisoned");
        if let Some(w) = j.writer.as_mut() {
            // A failed journal write demotes the daemon to memory-only
            // durability rather than failing requests.
            if w.append(index, r).is_err() {
                j.writer = None;
            }
        }
    }

    fn emit_trace(&self, index: usize, r: &QueryResult<C::Param>, qobs: &QueryObs) {
        if let Some(sink) = &self.trace {
            for ev in &qobs.events {
                sink.emit(ev);
            }
            sink.emit(&Event::QueryResolved {
                query: index as u64,
                outcome: outcome_tag(&r.outcome).to_string(),
                iterations: r.iterations as u64,
            });
            sink.flush();
        }
    }

    fn result_line(
        &self,
        req: &Request,
        index: usize,
        r: &QueryResult<C::Param>,
        generation: u64,
        resumed: bool,
    ) -> String {
        let b = LineBuilder::new()
            .opt_id(req.id.as_deref())
            .str("ok", if matches!(r.outcome, Outcome::Unresolved(_)) { "false" } else { "true" })
            .str("op", "solve")
            .num("index", index as u128)
            .str("label", &self.labels[index]);
        let b = match &r.outcome {
            Outcome::Proven { param, cost } => b
                .str("outcome", "proven")
                .str("param", &param.encode_param())
                .num("cost", u128::from(*cost)),
            Outcome::Impossible => b.str("outcome", "impossible"),
            Outcome::Unresolved(u) => {
                b.str("error", outcome_tag(&r.outcome)).str("detail", &u.to_string())
            }
        };
        b.num("iterations", r.iterations as u128)
            .num("retries", u128::from(r.retries))
            .num("generation", u128::from(generation))
            .str("resumed", if resumed { "true" } else { "false" })
            .finish()
    }

    fn solve_reply<'a>(
        &'a self,
        conn: &mut ConnState<C::Prim>,
        req: &Request,
        scope: Option<&dyn SolveScope<'a>>,
    ) -> Reply {
        let Op::Solve { target, deadline_ms, inject_panic, inject_stall_ms } = &req.op else {
            unreachable!("dispatched on Op::Solve");
        };
        if self.draining() {
            return Reply::text(self.error_line(req, "draining", "admission stopped"));
        }
        let Some(index) = self.resolve(target) else {
            let detail = match target {
                Target::Index(i) => format!("index {i} out of range"),
                Target::Label(l) => format!("no query labeled `{l}`"),
            };
            return Reply::text(self.error_line(req, "unknown_query", &detail));
        };
        if (*inject_panic || inject_stall_ms.is_some()) && !self.config.allow_inject {
            return Reply::text(self.error_line(
                req,
                "inject_forbidden",
                "daemon started without --allow-inject",
            ));
        }

        let generation = self.generation();
        if conn.generation != generation {
            // A quarantine happened since this connection last solved:
            // its interner may derive from the poisoned generation.
            conn.icache = InternCache::default();
            conn.generation = generation;
        }
        if !*inject_panic && inject_stall_ms.is_none() {
            let hit = self.answered.lock().expect("answered poisoned").get(&index).cloned();
            if let Some(r) = hit {
                self.served.fetch_add(1, Ordering::SeqCst);
                return Reply::text(self.result_line(req, index, &r, generation, true));
            }
        }

        let cache = Arc::clone(&self.cache.lock().expect("cache poisoned"));
        let timeout = deadline_ms.or(self.config.deadline_ms).map(Duration::from_millis);
        let retry = self.config.retry.as_ref();
        let watchdog = match (scope, self.config.watchdog_ms) {
            (Some(scope), Some(ms)) => Some((scope, Duration::from_millis(ms.max(1)))),
            _ => None,
        };
        let mut attempt: u32 = 0;
        let (result, qobs) = loop {
            // Each attempt gets a fresh deadline: the point of retrying
            // `DeadlineExceeded` under escalation is a fresh budget.
            let deadline = Deadline::timeout(timeout);
            let inject = *inject_panic && attempt == 0;
            let stall = if attempt == 0 { *inject_stall_ms } else { None };
            let (mut r, qobs) = if let Some((scope, dog)) = watchdog {
                let icache = std::mem::take(&mut conn.icache);
                match self.run_watched(scope, dog, index, &cache, icache, deadline, inject, stall)
                {
                    Ok((r, icache, qobs)) => {
                        conn.icache = icache;
                        (r, qobs)
                    }
                    Err(detail) => {
                        // The worker is abandoned mid-run. It still
                        // holds the retired generation's cache `Arc`
                        // and its own interner, so nothing it touches
                        // can reach a later request. No retry: a stall
                        // consumed a whole watchdog budget already.
                        self.watchdog_fired.fetch_add(1, Ordering::SeqCst);
                        let fresh = self.quarantine_current();
                        conn.generation = fresh;
                        return Reply {
                            text: self.error_line(req, "engine_stall", &detail),
                            quarantine: true,
                            shutdown: false,
                        };
                    }
                }
            } else {
                self.run_inline(conn, index, &cache, deadline, inject, stall)
            };
            r.retries = attempt;
            let transient = match &r.outcome {
                Outcome::Unresolved(u) => retry.is_some_and(|p| p.should_retry(u)),
                _ => false,
            };
            if transient && retry.is_some_and(|p| attempt < p.retries) && !self.draining() {
                if let Some(p) = retry {
                    std::thread::sleep(p.backoff(index as u64, attempt));
                }
                attempt += 1;
                continue;
            }
            break (r, qobs);
        };

        let faulted = matches!(result.outcome, Outcome::Unresolved(Unresolved::EngineFault(_)));
        let quarantine = if faulted {
            self.faults.fetch_add(1, Ordering::SeqCst);
            let fresh = self.quarantine_current();
            conn.icache = InternCache::default();
            conn.generation = fresh;
            true
        } else {
            self.served.fetch_add(1, Ordering::SeqCst);
            if Self::durable(&result.outcome) {
                self.record(index, &result);
                self.answered.lock().expect("answered poisoned").insert(index, result.clone());
            }
            false
        };
        self.emit_trace(index, &result, &qobs);
        Reply {
            text: self.result_line(req, index, &result, generation, false),
            quarantine,
            shutdown: false,
        }
    }

    /// One inline attempt on the calling thread (the unwatched path).
    fn run_inline(
        &self,
        conn: &mut ConnState<C::Prim>,
        index: usize,
        cache: &Arc<ForwardCache<'p, C::State>>,
        deadline: Deadline,
        inject_panic: bool,
        inject_stall_ms: Option<u64>,
    ) -> (QueryResult<C::Param>, QueryObs) {
        let mut qobs = QueryObs::new(index as u64, self.trace.is_some(), false);
        let started = Instant::now();
        let solved = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault (solve op)");
            }
            if let Some(ms) = inject_stall_ms {
                // Deliberately non-cooperative: no deadline poll. With
                // no watchdog this simply blocks the connection.
                std::thread::sleep(Duration::from_millis(ms));
            }
            solve_query_cached_warm(
                self.program,
                self.callees,
                self.client,
                &self.queries[index],
                &self.config.tracer,
                cache,
                &mut conn.icache,
                deadline,
                &mut qobs,
            )
        }));
        let r = match solved {
            Ok(r) => r,
            Err(payload) => {
                // The interner was mid-mutation when the worker
                // unwound; it goes down with the attempt.
                conn.icache = InternCache::default();
                Self::fault_result(payload.as_ref(), started)
            }
        };
        (r, qobs)
    }

    /// One attempt on a transport-scope worker thread, supervised by
    /// the heartbeat monitor. `Ok` hands back the attempt's result plus
    /// the interner the worker used; `Err` is a detected
    /// non-cooperative stall (the detail string) — the worker was
    /// abandoned, its interner with it.
    #[allow(clippy::too_many_arguments)]
    fn run_watched<'a>(
        &'a self,
        scope: &dyn SolveScope<'a>,
        watchdog: Duration,
        index: usize,
        cache: &Arc<ForwardCache<'p, C::State>>,
        icache: InternCache<C::Prim>,
        deadline: Deadline,
        inject_panic: bool,
        inject_stall_ms: Option<u64>,
    ) -> WatchedSolve<C::Param, C::Prim> {
        let qid = self.next_req.fetch_add(1, Ordering::Relaxed);
        let beat = Arc::new(AtomicU64::new(0));
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(qid, Inflight { index, started: Instant::now(), beat: Arc::clone(&beat) });
        let (tx, rx) = mpsc::channel();
        let trace_on = self.trace.is_some();
        scope.spawn(Box::new({
            let cache = Arc::clone(cache);
            let beat = Arc::clone(&beat);
            move || {
                let mut icache = icache;
                let mut qobs = QueryObs::new(index as u64, trace_on, false);
                let started = Instant::now();
                if let Some(ms) = inject_stall_ms {
                    // Deliberately non-cooperative: no deadline poll,
                    // no heartbeat — exactly what the watchdog hunts.
                    std::thread::sleep(Duration::from_millis(ms));
                }
                let _hb = heartbeat::install_heartbeat(beat);
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    if inject_panic {
                        panic!("injected fault (solve op)");
                    }
                    solve_query_cached_warm(
                        self.program,
                        self.callees,
                        self.client,
                        &self.queries[index],
                        &self.config.tracer,
                        &cache,
                        &mut icache,
                        deadline,
                        &mut qobs,
                    )
                }));
                let r = match solved {
                    Ok(r) => r,
                    Err(payload) => {
                        icache = InternCache::default();
                        Self::fault_result(payload.as_ref(), started)
                    }
                };
                // The monitor may have abandoned us; a dead receiver is
                // fine — result and interner die with this thread.
                let _ = tx.send((r, icache, qobs));
            }
        }));
        // Heartbeat monitor: while the counter keeps moving the request
        // is slow but alive; once it freezes for a whole watchdog
        // budget the attempt is declared non-cooperatively stalled.
        let slice = (watchdog / 4).max(Duration::from_millis(1));
        let mut last_beat = 0u64;
        let mut last_progress = Instant::now();
        loop {
            match rx.recv_timeout(slice) {
                Ok(out) => {
                    self.inflight
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .remove(&qid);
                    return Ok(out);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let t = beat.load(Ordering::Relaxed);
                    if t != last_beat {
                        last_beat = t;
                        last_progress = Instant::now();
                    } else if last_progress.elapsed() >= watchdog {
                        let detail = {
                            let mut map = self
                                .inflight
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            let f = map.remove(&qid).expect("inflight entry");
                            format!(
                                "query {} made no progress for {}ms (running {}ms, {} heartbeats)",
                                f.index,
                                watchdog.as_millis(),
                                f.started.elapsed().as_millis(),
                                f.beat.load(Ordering::Relaxed),
                            )
                        };
                        return Err(detail);
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The worker died without sending (its send is
                    // unconditional, so this is a scope failure); treat
                    // it exactly like a stall.
                    self.inflight
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .remove(&qid);
                    return Err(format!("query {index} worker vanished"));
                }
            }
        }
    }

    fn fault_result(
        payload: &(dyn std::any::Any + Send),
        started: Instant,
    ) -> QueryResult<C::Param> {
        QueryResult {
            outcome: Outcome::Unresolved(Unresolved::EngineFault(panic_message(payload))),
            iterations: 0,
            micros: started.elapsed().as_micros(),
            escalations: 0,
            degradations: 0,
            retries: 0,
            meta: MetaStats::default(),
        }
    }

    /// Retires the running cache generation: a fresh empty forward cache
    /// is swapped in and the generation counter bumps. Requests already
    /// holding the old `Arc` finish on it; nothing new ever reads it.
    /// Returns the new generation number.
    fn quarantine_current(&self) -> u64 {
        let mut slot = self.cache.lock().expect("cache poisoned");
        *slot = Arc::new(ForwardCache::new());
        self.quarantines.fetch_add(1, Ordering::SeqCst);
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Re-warms the current generation off the request path: computes
    /// the cheapest abstraction's forward run (where every query's first
    /// CEGAR iteration starts) into the current cache, so the first
    /// post-quarantine request starts warm. Queries with per-query fact
    /// budgets may still miss (different cache key); that is only a cold
    /// start, never a wrong answer. A panic here is contained like any
    /// worker panic.
    pub fn warm_generation(&self) {
        let cache = Arc::clone(&self.cache.lock().expect("cache poisoned"));
        let max_facts =
            self.config.tracer.escalation.budget(self.config.tracer.rhs_limits.max_facts, 0);
        let assignment = vec![false; self.client.n_atoms()];
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let p = self.client.param_of_model(&assignment);
            let waits = std::sync::atomic::AtomicU64::new(0);
            let _ = cache.forward(&assignment, max_facts, Deadline::NEVER, &waits, || {
                pda_dataflow::rhs::run(
                    self.program,
                    &pda_tracer::AsAnalysis(self.client),
                    &p,
                    self.client.initial_state(),
                    self.callees,
                    pda_dataflow::rhs::RhsLimits { max_facts, deadline: Deadline::NEVER },
                )
            });
        }));
    }

    fn batch_line(&self, req: &Request) -> String {
        if self.draining() {
            return self.error_line(req, "draining", "admission stopped");
        }
        let config = BatchConfig {
            tracer: self.config.tracer.clone(),
            jobs: self.config.jobs,
            thread_cap: self.config.thread_cap,
            retry: self.config.retry.clone(),
            cancel: Some(self.drain_flag()),
            ..BatchConfig::default()
        };
        let path = self.journal.lock().expect("journal poisoned").path.clone();
        let run = match &path {
            Some(path) => {
                // The checkpointed driver owns the journal file while it
                // runs; close our writer around the call.
                self.journal.lock().expect("journal poisoned").writer = None;
                solve_queries_batch_checkpointed(
                    self.program,
                    self.callees,
                    self.client,
                    &self.queries,
                    &config,
                    path,
                )
            }
            None => Ok(pda_tracer::solve_queries_batch(
                self.program,
                self.callees,
                self.client,
                &self.queries,
                &config,
            )),
        };
        if let Some(path) = &path {
            let mut j = self.journal.lock().expect("journal poisoned");
            j.writer = CheckpointWriter::open_append(path).ok();
        }
        let (results, stats) = match run {
            Ok(out) => out,
            Err(e) => {
                return LineBuilder::new()
                    .opt_id(req.id.as_deref())
                    .str("ok", "false")
                    .str("op", "batch")
                    .str("error", "checkpoint")
                    .str("detail", &e.to_string())
                    .num("generation", u128::from(self.generation()))
                    .finish()
            }
        };
        let mut proven = 0u64;
        let mut impossible = 0u64;
        let mut drained = 0u64;
        {
            let mut answered = self.answered.lock().expect("answered poisoned");
            for (i, r) in results.iter().enumerate() {
                match &r.outcome {
                    Outcome::Proven { .. } => proven += 1,
                    Outcome::Impossible => impossible += 1,
                    Outcome::Unresolved(Unresolved::Drained) => drained += 1,
                    Outcome::Unresolved(_) => {}
                }
                if Self::durable(&r.outcome) {
                    answered.insert(i, r.clone());
                }
            }
        }
        self.served.fetch_add(results.len() as u64 - drained, Ordering::SeqCst);
        LineBuilder::new()
            .opt_id(req.id.as_deref())
            .str("ok", "true")
            .str("op", "batch")
            .num("queries", results.len() as u128)
            .num("proven", u128::from(proven))
            .num("impossible", u128::from(impossible))
            .num("resumed", stats.resumed as u128)
            .num("faults", stats.engine_faults as u128)
            .num("deadlines", stats.deadline_exceeded as u128)
            .num("retries", u128::from(stats.retries))
            .num("drained", u128::from(drained))
            .num("generation", u128::from(self.generation()))
            .finish()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
