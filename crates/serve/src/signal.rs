//! Minimal std-only POSIX signal latch for graceful drain.
//!
//! The workspace has no libc binding, so the daemon declares the one C
//! entry point it needs — `signal(2)` — itself. The handler does the
//! only async-signal-safe thing a drain needs: a single atomic store
//! into a process-wide latch, which the accept loop polls between
//! admissions.

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide drain latch, raised by SIGTERM/SIGINT.
static TERM: AtomicBool = AtomicBool::new(false);

/// The registered handler: one atomic store, nothing else.
extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs [`on_term`] for SIGTERM (15) and SIGINT (2).
///
/// Idempotent; installing twice is harmless.
pub fn install_term_latch() {
    extern "C" {
        // `void (*signal(int, void (*)(int)))(int)` — the return value
        // (the previous handler) is pointer-sized and unused here.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal` is the C standard library's handler registration;
    // the handler performs only an atomic store, which is
    // async-signal-safe, and it stays valid for the process lifetime
    // (it is a plain fn item, not a closure).
    unsafe {
        let _ = signal(15, on_term); // SIGTERM
        let _ = signal(2, on_term); // SIGINT
    }
}

/// Whether a termination signal has been observed.
pub fn term_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_low_and_handler_raises_it() {
        install_term_latch();
        // Call the handler directly rather than raising a real signal:
        // the test harness shares the process, and the latch semantics
        // (store + poll) are what is under test.
        assert!(!term_requested());
        on_term(15);
        assert!(term_requested());
        TERM.store(false, Ordering::SeqCst);
    }
}
