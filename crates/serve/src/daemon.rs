//! The transport loop: Unix-socket accept loop (one thread per
//! connection, scoped so handlers may borrow the resident program) or a
//! single-threaded stdin/stdout JSONL session.
//!
//! Drain discipline: SIGTERM/SIGINT raise the [`crate::signal`] latch,
//! which the accept loop copies into the supervisor's drain flag. From
//! that moment no new request is admitted; connection handlers finish
//! the request they are on (a running `batch` op sees the same flag as
//! its cancel signal and checkpoints instead), the listener closes, the
//! journal is flushed, and [`run_daemon`] returns — the daemon exits 0.

use crate::signal;
use crate::supervisor::{ConnState, ServeConfig, SolveScope, Supervisor};
use pda_lang::{CallId, MethodId, Program};
use pda_tracer::{ParamCodec, Query, TracerClient};
use pda_util::FileSink;
use std::fmt;
use std::io::{BufRead, ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Everything that can go wrong starting or running a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket, journal, or trace-file I/O failure.
    Io(String),
    /// The journal exists but cannot be trusted.
    Journal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "{m}"),
            ServeError::Journal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Transport options (policy lives in [`ServeConfig`]).
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Unix-socket path; `None` serves one JSONL session on
    /// stdin/stdout instead (status lines then go to stderr).
    pub socket: Option<PathBuf>,
    /// Journal path: finished verdicts stream here and are resumed on
    /// restart. A standard batch checkpoint file.
    pub journal: Option<PathBuf>,
    /// Structured JSONL trace output path (per-request obs spans).
    pub trace: Option<PathBuf>,
}

/// What a drained daemon reports on clean exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonReport {
    /// Requests successfully served (including memo hits).
    pub served: u64,
    /// Requests that resolved as engine faults.
    pub faults: u64,
    /// Cache generations retired after panics.
    pub quarantines: u64,
    /// Non-cooperative stalls reclaimed by the watchdog.
    pub watchdog_fired: u64,
    /// Queries resumed from the journal at startup.
    pub resumed: usize,
}

/// Adapts a transport's scoped-thread handle to the supervisor's
/// [`SolveScope`] capability: abandoned watchdog workers park here and
/// are joined (bounded by their stall) when the transport drains.
struct ScopeSpawner<'scope, 'env>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> SolveScope<'scope> for ScopeSpawner<'scope, 'env> {
    fn spawn(&self, f: Box<dyn FnOnce() + Send + 'scope>) {
        self.0.spawn(f);
    }
}

/// Loads the resident state and serves until drained.
///
/// Blocks for the daemon's whole life; returns the exit report on a
/// clean drain (signal or `shutdown` op).
///
/// # Errors
///
/// [`ServeError::Io`] when the socket or trace file cannot be set up;
/// [`ServeError::Journal`] when an existing journal cannot be trusted.
pub fn run_daemon<C>(
    program: &Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: Vec<Query<C::Prim>>,
    labels: Vec<String>,
    config: ServeConfig,
    options: &DaemonOptions,
) -> Result<DaemonReport, ServeError>
where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Sync + Send,
{
    let mut sup = Supervisor::new(program, callees, client, queries, labels, config);
    if let Some(path) = &options.trace {
        let sink = FileSink::create(path)
            .map_err(|e| ServeError::Io(format!("trace {}: {e}", path.display())))?;
        sup.attach_trace(sink);
    }
    let mut resumed = 0;
    if let Some(path) = &options.journal {
        resumed = sup.attach_journal(path.clone()).map_err(ServeError::Journal)?;
    }
    signal::install_term_latch();
    match &options.socket {
        Some(path) => serve_socket(&sup, path, resumed)?,
        None => serve_stdio(&sup, resumed)?,
    }
    sup.close_journal();
    Ok(DaemonReport {
        served: sup.served(),
        faults: sup.faults(),
        quarantines: sup.quarantines(),
        watchdog_fired: sup.watchdog_fired(),
        resumed,
    })
}

fn serve_socket<C>(
    sup: &Supervisor<'_, C>,
    path: &PathBuf,
    resumed: usize,
) -> Result<(), ServeError>
where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Sync + Send,
{
    // A stale socket file from a killed daemon would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", path.display())))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Io(format!("nonblocking listener: {e}")))?;
    // The readiness line scripts wait for before connecting.
    println!("pda-serve: listening on {} ({} resumed)", path.display(), resumed);
    let _ = std::io::stdout().flush();

    let drain = sup.drain_flag();
    std::thread::scope(|scope| {
        loop {
            if signal::term_requested() {
                drain.store(true, Ordering::SeqCst);
            }
            if drain.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    scope.spawn(move || handle_connection(sup, stream, scope));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        // Scope exit joins every connection handler: each notices the
        // drain flag at its next read-timeout tick and returns.
    });
    let _ = std::fs::remove_file(path);
    println!(
        "pda-serve: drained (served {} faults {} quarantines {} watchdog {})",
        sup.served(),
        sup.faults(),
        sup.quarantines(),
        sup.watchdog_fired()
    );
    Ok(())
}

fn handle_connection<'env, 'scope, 'p, C>(
    sup: &'env Supervisor<'p, C>,
    stream: UnixStream,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Sync + Send,
    'p: 'env,
{
    // The timeout bounds how long a drained daemon waits on an idle
    // connection; requests in progress are never interrupted.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = LineReader::default();
    let mut input = &stream;
    let mut output = &stream;
    let mut conn = ConnState::new(sup.generation());
    let spawner = ScopeSpawner(scope);
    while let Some(line) = reader.next_line(&mut input, || sup.draining()) {
        if line.trim().is_empty() {
            continue;
        }
        let reply = sup.handle_line_watched(&mut conn, &line, &spawner);
        if writeln!(output, "{}", reply.text).and_then(|()| output.flush()).is_err() {
            break; // client went away mid-response
        }
        if reply.quarantine {
            // Rebuild the retired generation's hot path off this
            // connection's request path.
            scope.spawn(move || sup.warm_generation());
        }
        if reply.shutdown {
            break;
        }
    }
}

/// Accumulates raw reads into complete lines, surviving read timeouts
/// mid-line; `stop` is polled only between reads, so a request already
/// admitted always gets its response.
#[derive(Default)]
struct LineReader {
    buf: Vec<u8>,
}

impl LineReader {
    fn next_line(&mut self, stream: &mut impl Read, stop: impl Fn() -> bool) -> Option<String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if stop() {
                return None;
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) => {}
                Err(_) => return None,
            }
        }
    }
}

fn serve_stdio<C>(sup: &Supervisor<'_, C>, resumed: usize) -> Result<(), ServeError>
where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    eprintln!("pda-serve: serving stdio ({resumed} resumed)");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    // The scope exists so watchdog workers have somewhere to be
    // abandoned; scope exit joins any stragglers (bounded by their
    // stall) before the session returns.
    std::thread::scope(|scope| {
        let spawner = ScopeSpawner(scope);
        let mut conn = ConnState::new(sup.generation());
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| ServeError::Io(format!("stdin: {e}")))?;
            if line.trim().is_empty() {
                continue;
            }
            let reply = sup.handle_line_watched(&mut conn, &line, &spawner);
            {
                let mut out = stdout.lock();
                writeln!(out, "{}", reply.text)
                    .and_then(|()| out.flush())
                    .map_err(|e| ServeError::Io(format!("stdout: {e}")))?;
            }
            if reply.quarantine {
                // Single-session transport: re-warm inline, before the
                // next request is read.
                sup.warm_generation();
            }
            if reply.shutdown || sup.draining() || signal::term_requested() {
                break;
            }
        }
        Ok(())
    })
}

/// One-shot client helper: connects to a daemon socket, sends one
/// request line, and returns the response line. Used by `pda request`
/// and the tests.
///
/// # Errors
///
/// [`ServeError::Io`] when the daemon is unreachable or hangs up before
/// responding.
pub fn request_line(socket: &std::path::Path, line: &str) -> Result<String, ServeError> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| ServeError::Io(format!("connect {}: {e}", socket.display())))?;
    let mut writer = &stream;
    writeln!(writer, "{line}")
        .and_then(|()| writer.flush())
        .map_err(|e| ServeError::Io(format!("send: {e}")))?;
    let mut reader = std::io::BufReader::new(&stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| ServeError::Io(format!("recv: {e}")))?;
    if response.is_empty() {
        return Err(ServeError::Io("daemon closed the connection without a response".into()));
    }
    Ok(response.trim_end_matches('\n').to_string())
}
