//! The daemon's wire protocol: one flat JSON object per line in each
//! direction, using the same hand-rolled codec as the batch checkpoint
//! format (`pda_util::json`). Values are strings or unsigned integers;
//! there is no nesting, so every line parses with
//! [`pda_util::json::parse_json_line`].
//!
//! Requests:
//!
//! ```json
//! {"op":"health"}
//! {"op":"solve","query":"q3"}
//! {"op":"solve","index":4,"deadline_ms":500,"id":"req-17"}
//! {"op":"solve","index":0,"inject":"panic"}     // --allow-inject only
//! {"op":"solve","index":0,"inject":"stall:300"} // --allow-inject only
//! {"op":"batch"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"` (`"true"`/`"false"` — the codec has no
//! booleans), `"op"`, and `"generation"`, plus the echoed `"id"` when the
//! request had one. Successful solves add `outcome`/`param`/`cost`/
//! `iterations`/`retries`/`resumed`; failures add `error` (the outcome
//! tag, e.g. `engine_fault`) and a human-readable `detail`.

use pda_util::json::{json_escape, parse_json_line};

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// The operation.
    pub op: Op,
}

/// The operations the daemon understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Liveness/readiness probe with the supervision counters.
    Health,
    /// Solve one resident query.
    Solve {
        /// Which query.
        target: Target,
        /// Per-request wall-clock deadline override, in milliseconds.
        deadline_ms: Option<u64>,
        /// Deliberate first-attempt panic (`"inject":"panic"`), honored
        /// only when the daemon was started with `--allow-inject`.
        inject_panic: bool,
        /// Deliberate first-attempt *non-cooperative* stall of this many
        /// milliseconds (`"inject":"stall:MS"`, default 500): the worker
        /// sleeps without polling any deadline, exercising the watchdog.
        /// Honored only under `--allow-inject`.
        inject_stall_ms: Option<u64>,
    },
    /// Run every resident query through the checkpointed batch driver.
    Batch,
    /// Stop admission and drain.
    Shutdown,
}

/// How a solve request names its query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// By batch index (declaration order of the resident queries).
    Index(usize),
    /// By source label.
    Label(String),
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable reason for malformed lines, unknown ops, and
/// ill-typed fields; the daemon maps it to a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_json_line(line).ok_or_else(|| "malformed json line".to_string())?;
    let id = fields.get("id").cloned();
    let op = match fields.get("op").map(String::as_str) {
        Some("health") => Op::Health,
        Some("batch") => Op::Batch,
        Some("shutdown") => Op::Shutdown,
        Some("solve") => {
            let target = match (fields.get("query"), fields.get("index")) {
                (Some(label), None) => Target::Label(label.clone()),
                (None, Some(i)) => {
                    Target::Index(i.parse().map_err(|_| format!("bad index `{i}`"))?)
                }
                (Some(_), Some(_)) => return Err("give `query` or `index`, not both".into()),
                (None, None) => return Err("solve needs `query` or `index`".into()),
            };
            let deadline_ms = match fields.get("deadline_ms") {
                Some(v) => {
                    Some(v.parse().map_err(|_| format!("bad deadline_ms `{v}`"))?)
                }
                None => None,
            };
            let (inject_panic, inject_stall_ms) = match fields.get("inject").map(String::as_str) {
                None => (false, None),
                Some("panic") => (true, None),
                Some("stall") => (false, Some(500)),
                Some(s) => match s.strip_prefix("stall:") {
                    Some(ms) => {
                        (false, Some(ms.parse().map_err(|_| format!("bad inject `{s}`"))?))
                    }
                    None => return Err(format!("unknown inject `{s}`")),
                },
            };
            Op::Solve { target, deadline_ms, inject_panic, inject_stall_ms }
        }
        Some(other) => return Err(format!("unknown op `{other}`")),
        None => return Err("missing `op`".into()),
    };
    Ok(Request { id, op })
}

/// Builds one flat JSON line, preserving field insertion order.
#[derive(Debug, Default)]
pub struct LineBuilder {
    parts: Vec<String>,
}

impl LineBuilder {
    /// Starts an empty object.
    pub fn new() -> LineBuilder {
        LineBuilder::default()
    }

    /// Appends a string field (escaped and quoted).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{}\":\"{}\"", json_escape(key), json_escape(value)));
        self
    }

    /// Appends an unsigned numeric field.
    #[must_use]
    pub fn num(mut self, key: &str, value: u128) -> Self {
        self.parts.push(format!("\"{}\":{value}", json_escape(key)));
        self
    }

    /// Echoes the request id, when present.
    #[must_use]
    pub fn opt_id(self, id: Option<&str>) -> Self {
        match id {
            Some(v) => self.str("id", v),
            None => self,
        }
    }

    /// Closes the object into one line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(
            parse_request("{\"op\":\"health\"}"),
            Ok(Request { id: None, op: Op::Health })
        );
        assert_eq!(
            parse_request("{\"op\":\"solve\",\"query\":\"q1\",\"id\":\"a\"}"),
            Ok(Request {
                id: Some("a".into()),
                op: Op::Solve {
                    target: Target::Label("q1".into()),
                    deadline_ms: None,
                    inject_panic: false,
                    inject_stall_ms: None,
                },
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"solve\",\"index\":3,\"deadline_ms\":250,\"inject\":\"panic\"}"),
            Ok(Request {
                id: None,
                op: Op::Solve {
                    target: Target::Index(3),
                    deadline_ms: Some(250),
                    inject_panic: true,
                    inject_stall_ms: None,
                },
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"solve\",\"index\":0,\"inject\":\"stall:250\"}"),
            Ok(Request {
                id: None,
                op: Op::Solve {
                    target: Target::Index(0),
                    deadline_ms: None,
                    inject_panic: false,
                    inject_stall_ms: Some(250),
                },
            })
        );
        for bad in [
            "not json",
            "{\"op\":\"warp\"}",
            "{\"query\":\"q\"}",
            "{\"op\":\"solve\"}",
            "{\"op\":\"solve\",\"index\":\"x\"}",
            "{\"op\":\"solve\",\"index\":1,\"query\":\"q\"}",
            "{\"op\":\"solve\",\"index\":1,\"inject\":\"flood\"}",
            "{\"op\":\"solve\",\"index\":1,\"inject\":\"stall:soon\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn line_builder_round_trips_through_the_parser() {
        let line = LineBuilder::new()
            .opt_id(Some("id \"quoted\""))
            .str("ok", "true")
            .num("generation", 7)
            .str("detail", "panic: \\ \n done")
            .finish();
        let fields = parse_json_line(&line).expect("own output must parse");
        assert_eq!(fields["id"], "id \"quoted\"");
        assert_eq!(fields["ok"], "true");
        assert_eq!(fields["generation"], "7");
        assert_eq!(fields["detail"], "panic: \\ \n done");
    }
}
