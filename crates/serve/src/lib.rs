//! **pda-serve** — the analysis-as-a-service daemon.
//!
//! A long-lived, fully offline process that loads one Jaylite program,
//! keeps the expensive per-program artifacts resident — the parsed
//! program, call graph, the [`pda_tracer::ForwardCache`] of shared
//! forward runs, and a per-connection [`pda_tracer::InternCache`] — and
//! answers queries over a line-oriented JSON protocol (one flat object
//! per line, the same hand-rolled codec as the batch checkpoint format).
//!
//! The transport is a Unix domain socket (or stdin/stdout for one-shot
//! scripting); the interesting part is the **supervision layer** wrapped
//! around the resident analysis state:
//!
//! * **Per-request isolation** — every solve runs under `catch_unwind`;
//!   a worker panic becomes a structured `engine_fault` error response,
//!   never a dead connection or a dead daemon.
//! * **Cache quarantine** — after a panic the warm-cache *generation* is
//!   retired: a fresh forward cache is swapped in, the generation
//!   counter bumps, and every connection's interner is rebuilt before
//!   its next request, so a possibly-poisoned entry can never serve a
//!   later request. The retired cache's `Arc` dies with the requests
//!   already holding it. The new generation is re-warmed off the request
//!   path ([`Supervisor::warm_generation`]).
//! * **Deadlines and retry** — each request runs under its own
//!   wall-clock deadline, and transient faults (engine faults; deadline
//!   hits when so configured) are retried on the deterministic
//!   [`pda_tracer::RetryPolicy`] backoff ladder.
//! * **Graceful drain** — SIGTERM/SIGINT (or a `shutdown` request) stops
//!   admission; in-flight work finishes or is checkpointed (the `batch`
//!   op runs under the drain flag as its cancel signal) and the process
//!   exits cleanly. A restarted daemon resumes finished queries from its
//!   journal, a standard batch checkpoint file.
//! * **Probes and spans** — a `health` op reports readiness and the
//!   supervision counters, and `--trace` streams the per-request
//!   structured event log as JSONL.
//!
//! See `DESIGN.md` ("Service architecture & failure model") for the
//! protocol schema and the failure-mode table.

#![warn(missing_docs)]

pub mod daemon;
pub mod proto;
pub mod signal;
pub mod supervisor;

pub use daemon::{request_line, run_daemon, DaemonOptions, DaemonReport, ServeError};
pub use proto::{parse_request, LineBuilder, Op, Request, Target};
pub use supervisor::{ConnState, Reply, ServeConfig, SolveScope, Supervisor};
