//! The paper's running example (Figure 1): a `File` object with an
//! open/close protocol, two queries, two outcomes.
//!
//! ```sh
//! cargo run -p pda-bench --example typestate_file
//! ```
//!
//! `check1` asks whether the file is closed at the end — provable, and the
//! cheapest abstraction tracks exactly `{x, y}` (not `z`!). `check2` asks
//! whether it is opened — *not* provable by any abstraction in the 2^N
//! family, and TRACER proves that impossibility in a couple of
//! iterations instead of enumerating the family.

use pda_analysis::PointsTo;
use pda_tracer::{solve_query, Outcome, TracerConfig};
use pda_typestate::TypestateClient;

const FIGURE1: &str = r#"
    class File { fn open(); fn close(); }

    typestate File {
        init closed;
        closed -> open -> opened;
        opened -> close -> closed;
        opened -> open -> error;
        closed -> close -> error;
    }

    fn main() {
        var x, y, z;
        x = new File;
        y = x;
        if (*) { z = x; }
        x.open();
        y.close();
        if (*) { query check1: state x in { closed }; }
        else { query check2: state x in { opened }; }
    }
"#;

fn main() {
    let program = pda_lang::parse_program(FIGURE1).expect("program parses");
    let pa = PointsTo::analyze(&program);
    let site = pda_lang::SiteId(0); // the lone `new File`
    let client = TypestateClient::for_declared_automaton(&program, &pa, site)
        .expect("File has a typestate declaration");

    for label in ["check1", "check2"] {
        let qid = program.query_by_label(label).unwrap();
        let query = client.state_query(qid);
        let result = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        println!("── {label} ──");
        println!("iterations: {}", result.iterations);
        match result.outcome {
            Outcome::Proven { param, cost } => {
                let vars: Vec<&str> = param
                    .iter()
                    .map(|i| program.var_name(pda_lang::VarId(i as u32)))
                    .collect();
                println!("PROVEN; cheapest abstraction tracks {{{}}} (|p| = {cost})", vars.join(", "));
            }
            Outcome::Impossible => {
                println!("IMPOSSIBLE: no subset of variables lets the analysis prove this");
            }
            Outcome::Unresolved(r) => println!("unresolved: {r:?}"),
        }
        println!();
    }
    println!("(paper, Figure 1: check1 needs exactly {{x, y}}; check2 is impossible)");
}
