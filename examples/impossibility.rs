//! Inside one CEGAR iteration: watch the backward meta-analysis prune
//! the abstraction family.
//!
//! ```sh
//! cargo run -p pda-bench --example impossibility
//! ```
//!
//! This example drives the framework's layers by hand — forward run,
//! counterexample trace, backward weakest preconditions, restriction to a
//! parameter formula — and prints the unviability constraint each
//! iteration learns, until the viable set is empty and impossibility is
//! established. It is the machinery of `pda_tracer::solve_query`,
//! narrated.

use pda_analysis::PointsTo;
use pda_dataflow::{rhs, RhsLimits};
use pda_escape::EscapeClient;
use pda_meta::{analyze_trace, restrict, BeamConfig};
use pda_solver::{MinCostSolver, PFormula};
use pda_tracer::{AsAnalysis, AsMeta, TracerClient};

const PROGRAM: &str = r#"
    global shared;
    class Node { field next; }

    fn main() {
        var head, cursor;
        head = new Node;        // h0
        cursor = new Node;      // h1
        cursor.next = head;
        shared = cursor;        // publishes cursor AND head (reachable!)
        query q: local head;
    }
"#;

fn main() {
    let program = pda_lang::parse_program(PROGRAM).expect("program parses");
    let pa = PointsTo::analyze(&program);
    let client = EscapeClient::new(&program);
    let qid = program.query_by_label("q").unwrap();
    let query = client.local_query(&program, qid);
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();

    println!("query: prove `head` thread-local — it is not (it is reachable");
    println!("from the published `cursor`), so TRACER must prove impossibility.\n");

    let mut constraints: Vec<PFormula> = Vec::new();
    for iteration in 1..=10 {
        let mut solver = MinCostSolver::with_unit_costs(client.n_atoms());
        for c in &constraints {
            solver.require(c.clone());
        }
        let Some(model) = solver.solve() else {
            println!("iteration {iteration}: viable set is EMPTY — impossibility proven.");
            println!("(the analysis cannot prove the query with any of the 2^{} abstractions)",
                client.n_atoms());
            return;
        };
        let p = client.param_of_model(&model.assignment);
        println!("iteration {iteration}: trying cheapest viable abstraction L-sites = {p}");

        let run = rhs::run(
            &program,
            &AsAnalysis(&client),
            &p,
            client.initial_state(),
            &callees,
            RhsLimits::default(),
        )
        .expect("within budget");
        let failing = |d: &pda_escape::Env| query.not_q.holds(&p, d);
        let Some(trace) = run.witness(query.point, &failing) else {
            println!("  proven!");
            return;
        };
        println!("  fails; counterexample trace has {} atoms:", trace.len());
        for step in &trace {
            println!("    {}", pda_lang::pretty::atom(&program, &step.atom));
        }
        let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();
        let dnf = analyze_trace(
            &AsMeta(&client),
            &p,
            &client.initial_state(),
            &atoms,
            &query.not_q,
            &BeamConfig::default(),
        )
        .expect("sound trace");
        println!("  sufficient condition for failure at entry: {dnf}");
        let phi = restrict(&dnf, &client.initial_state());
        println!("  unviable-abstraction formula: {phi:?}");
        constraints.push(PFormula::not(phi));
    }
    println!("(did not converge in 10 iterations — unexpected for this program)");
}
