//! The under-approximation tradeoff of Section 4.1, live.
//!
//! ```sh
//! cargo run -p pda-bench --example beam_width
//! ```
//!
//! Replays the paper's Figure 6 comparison on a container program: the
//! backward meta-analysis runs with beam widths k = 1 (aggressive
//! under-approximation: tiny formulas, more CEGAR iterations), k = 5 (the
//! paper's sweet spot), and effectively unbounded (exact weakest
//! preconditions: one backward pass learns the full failure condition,
//! Figure 6(a)-style blowup risk), printing the iteration ladder each
//! explores.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_meta::BeamConfig;
use pda_tracer::{solve_query_logged, Outcome, TracerConfig};

const PROGRAM: &str = r#"
    class Cell { field slot; }
    fn put(c, x) { c.slot = x; }
    fn main() {
        var a, b, c, x;
        a = new Cell;      // h0
        b = new Cell;      // h1
        c = new Cell;      // h2
        x = new Cell;      // h3: the queried object
        put(a, x);
        put(b, a);
        put(c, b);
        query q: local x;
    }
"#;

fn main() {
    let program = pda_lang::parse_program(PROGRAM).expect("program parses");
    let pa = PointsTo::analyze(&program);
    let client = EscapeClient::new(&program);
    let qid = program.query_by_label("q").unwrap();
    let query = client.local_query(&program, qid);
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();

    for (label, beam) in [
        ("k = 1 (aggressive)", BeamConfig::with_k(1)),
        ("k = 5 (paper default)", BeamConfig::with_k(5)),
        ("exhaustive (no beam)", BeamConfig::exhaustive()),
    ] {
        let config = TracerConfig { beam, ..TracerConfig::default() };
        let (result, log) =
            solve_query_logged(&program, &callees, &client, &query, &config);
        println!("── {label} ──");
        for (i, entry) in log.iter().enumerate() {
            let verdict = if entry.learned.is_some() { "fails" } else { "PROVES" };
            println!(
                "  iteration {}: try L-sites {} (cost {}) → {verdict}",
                i + 1,
                entry.param,
                entry.cost
            );
        }
        match &result.outcome {
            Outcome::Proven { cost, .. } => {
                println!("  optimum |p| = {cost} in {} iterations\n", result.iterations)
            }
            other => println!("  unexpected outcome: {other:?}\n"),
        }
    }
    println!("All beam widths find the same optimum — the beam only trades");
    println!("formula size against iteration count (Theorem 3 keeps it sound).");
}
