//! Quickstart: find the optimum abstraction for one thread-escape query.
//!
//! ```sh
//! cargo run -p pda-bench --example quickstart
//! ```
//!
//! Parses a small Jaylite program, poses the `query q: local box2;`
//! thread-locality query, and asks TRACER for the *cheapest* abstraction
//! (which allocation sites must be summarized precisely) that proves it —
//! or a proof that none exists.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_tracer::{solve_query, Outcome, TracerConfig};

const PROGRAM: &str = r#"
    global shared;

    class Box { field item; }

    fn fill(b, x) {
        b.item = x;
        return b;
    }

    fn main() {
        var box1, box2, thing1, thing2, r;
        // box1 is published to another thread ...
        box1 = new Box;          // site 0
        thing1 = new Box;        // site 1
        r = fill(box1, thing1);
        shared = box1;
        // ... box2 never escapes.
        box2 = new Box;          // site 2
        thing2 = new Box;        // site 3
        r = fill(box2, thing2);
        query q: local box2;
    }
"#;

fn main() {
    let program = pda_lang::parse_program(PROGRAM).expect("program parses");
    let pa = PointsTo::analyze(&program);
    let client = EscapeClient::new(&program);
    let qid = program.query_by_label("q").expect("query exists");
    let query = client.local_query(&program, qid);

    let result = solve_query(
        &program,
        &|c| pa.callees(c).to_vec(),
        &client,
        &query,
        &TracerConfig::default(),
    );

    println!("query: is the object `box2` points to thread-local?");
    println!("CEGAR iterations: {}", result.iterations);
    match result.outcome {
        Outcome::Proven { param, cost } => {
            println!("PROVEN with cheapest abstraction (|p| = {cost}):");
            for h in param.iter() {
                println!("  map site {} to L", program.site_label(pda_lang::SiteId(h as u32)));
            }
            println!("every site outside this set can stay coarse (E).");
        }
        Outcome::Impossible => {
            println!("IMPOSSIBLE: no abstraction in the 2^|sites| family proves it.")
        }
        Outcome::Unresolved(r) => println!("unresolved: {r:?}"),
    }
}
