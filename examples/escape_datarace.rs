//! Thread-escape analysis as a static datarace front-end.
//!
//! ```sh
//! cargo run -p pda-bench --example escape_datarace
//! ```
//!
//! A datarace detector only needs to consider field accesses on objects
//! that *escape* their creating thread. This example poses one
//! thread-locality query per field access (exactly the paper's
//! Section 6 query generator) on a worker-queue program and reports which
//! accesses are proven race-free — plus what each proof cost.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_tracer::{solve_queries, Outcome, TracerConfig};
use pda_util::Idx;

const PROGRAM: &str = r#"
    global queue;

    class Task { field payload, next; }
    class Scratch { field tmp; }

    fn enqueue(t) {
        var old;
        old = queue;
        t.next = old;      // access on t: t escapes via queue below
        queue = t;
    }

    fn process() {
        var s, t, v;
        // Thread-private scratch space: never escapes.
        s = new Scratch;
        t = new Task;
        v = t.payload;     // access on t: local at this point
        s.tmp = v;         // access on s: provably local
        enqueue(t);
        v = t.payload;     // access on t: t has escaped now
    }

    fn main() {
        var w;
        w = null;
        while (*) { process(); }
        spawn w;
    }
"#;

fn main() {
    let program = pda_lang::parse_program(PROGRAM).expect("program parses");
    let pa = PointsTo::analyze(&program);
    let reach = pda_analysis::Reachability::compute(&program, &pa);
    let client = EscapeClient::new(&program);

    let accesses = EscapeClient::accesses(&program, reach.methods());
    let queries: Vec<_> = accesses
        .iter()
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
    let (results, stats) = solve_queries(
        &program,
        &callees,
        &client,
        &queries,
        &TracerConfig::default(),
    );

    println!("field accesses in reachable code: {}", accesses.len());
    println!("forward runs shared across queries: {}\n", stats.forward_runs);
    for ((point, var), r) in accesses.iter().zip(&results) {
        let line = program.points[*point].line;
        let what = format!("line {line}: access on `{}`", program.var_name(*var));
        match &r.outcome {
            Outcome::Proven { param, cost } => {
                let sites: Vec<String> = param
                    .iter()
                    .map(|h| program.site_label(pda_lang::SiteId::from_usize(h)))
                    .collect();
                println!("{what:<34} race-free (|p| = {cost}: L = {{{}}})", sites.join(", "));
            }
            Outcome::Impossible => {
                println!("{what:<34} may race: object escapes under every abstraction");
            }
            Outcome::Unresolved(u) => println!("{what:<34} unresolved: {u:?}"),
        }
    }
}
