#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Must pass fully offline:
# the workspace has zero registry dependencies, so no step may hit the
# network. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== perf smoke: seeded batch bench vs expected outcomes =="
# The bench is fully seeded (hedc, seed 13), so every `outcome N:` line
# and the two cross-kernel/cross-jobs identity lines are deterministic.
# A panic exits non-zero (set -e); a verdict drift or a deadline hit on
# an unconstrained run is a regression. Bench JSON goes to target/ so
# the committed BENCH_batch.json artifact is not clobbered.
perf="$(PDA_BENCH_OUT=target/ci_bench.json ./target/release/batch)"
echo "$perf"
diff scripts/expected_batch_outcomes.txt \
    <(echo "$perf" | grep -E '^(outcome [0-9]+:|tree/interned outcomes identical:|per-query outcomes identical across job counts:)') \
    || { echo "ci: batch outcomes drifted from scripts/expected_batch_outcomes.txt" >&2; exit 1; }
echo "$perf" | grep -q 'resilience: deadline_exceeded=0 engine_faults=0' \
    || { echo "ci: perf smoke hit deadlines or engine faults on an unconstrained run" >&2; exit 1; }

echo "== resilience smoke: batch under a 1 ms per-query deadline =="
# Every query must still produce a result (exit 0) and the starved
# deadline must surface as DeadlineExceeded rather than a hang or crash.
smoke="$(PDA_DEADLINE_MS=1 PDA_BENCH_OUT=target/ci_bench_starved.json ./target/release/batch)"
echo "$smoke"
echo "$smoke" | grep -Eq 'resilience: deadline_exceeded=[0-9]+ engine_faults=0' \
    || { echo "ci: resilience smoke missing its summary line" >&2; exit 1; }

echo "ci: all checks passed"
