#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Must pass fully offline:
# the workspace has zero registry dependencies, so no step may hit the
# network. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "ci: all checks passed"
