#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Must pass fully offline:
# the workspace has zero registry dependencies, so no step may hit the
# network. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== perf smoke: seeded batch bench vs expected outcomes =="
# The bench is fully seeded (hedc, seed 13), so every `outcome N:` line
# and the two cross-kernel/cross-jobs identity lines are deterministic.
# A panic exits non-zero (set -e); a verdict drift or a deadline hit on
# an unconstrained run is a regression. Bench JSON goes to target/ so
# the committed BENCH_batch.json artifact is not clobbered. PDA_TRACE
# makes the bench stream + self-validate the structured JSONL trace
# (strict parse, byte-identity across job counts, event counts vs its
# own results).
perf="$(PDA_TRACE=target/ci_trace PDA_BENCH_OUT=target/ci_bench.json ./target/release/batch)"
echo "$perf"
diff scripts/expected_batch_outcomes.txt \
    <(echo "$perf" | grep -E '^(outcome [0-9]+:|tree/interned outcomes identical:|per-query outcomes identical across job counts:|viable-engine outcomes identical:)') \
    || { echo "ci: batch outcomes drifted from scripts/expected_batch_outcomes.txt" >&2; exit 1; }
echo "$perf" | grep -q 'resilience: deadline_exceeded=0 engine_faults=0' \
    || { echo "ci: perf smoke hit deadlines or engine faults on an unconstrained run" >&2; exit 1; }

echo "== trace smoke: structured JSONL trace vs bench counters =="
# Cross-check the trace summary's iteration/query counts against the
# independently written bench JSON.
trace_line="$(echo "$perf" | grep '^trace: ')" \
    || { echo "ci: perf smoke did not emit a trace summary" >&2; exit 1; }
iters_trace="$(echo "$trace_line" | sed -E 's/.* ([0-9]+) iterations.*/\1/')"
iters_json="$(grep '"interned"' target/ci_bench.json | sed -E 's/.*"iterations":([0-9]+).*/\1/')"
queries_trace="$(echo "$trace_line" | sed -E 's/.* ([0-9]+) queries.*/\1/')"
queries_json="$(grep '"queries": ' target/ci_bench.json | sed -E 's/.*"queries": ([0-9]+).*/\1/')"
[ "$iters_trace" = "$iters_json" ] && [ "$queries_trace" = "$queries_json" ] \
    || { echo "ci: trace counts (iters=$iters_trace queries=$queries_trace) disagree with bench JSON (iters=$iters_json queries=$queries_json)" >&2; exit 1; }
echo "trace smoke ok: $iters_trace iterations, $queries_trace queries"

echo "== viable-engine smoke: BDD vs DPLL on the seeded hedc bench =="
# The perf smoke's engine-split phase already asserted per-query outcome
# identity inside the bin (a panic exits non-zero). Here CI re-runs the
# whole bench with the ROBDD engine driving *every* phase and diffs the
# outcome lines byte-for-byte against the same checked-in expectations,
# then pins the perf claim from the default run's JSON: the BDD
# solver-phase wall (min-of-repeats) must not exceed DPLL's. The BDD
# keeps the viable set resident across CEGAR iterations (conjoin-only
# updates), so many-iteration queries are where the win comes from.
vperf="$(PDA_VIABLE_ENGINE=bdd PDA_BENCH_OUT=target/ci_bench_bdd.json ./target/release/batch)"
echo "$vperf"
diff scripts/expected_batch_outcomes.txt \
    <(echo "$vperf" | grep -E '^(outcome [0-9]+:|tree/interned outcomes identical:|per-query outcomes identical across job counts:|viable-engine outcomes identical:)') \
    || { echo "ci: BDD-engine batch outcomes drifted from scripts/expected_batch_outcomes.txt" >&2; exit 1; }
dpll_us="$(sed -nE 's/.*"dpll_solver_micros": ([0-9]+).*/\1/p' target/ci_bench.json)"
bdd_us="$(sed -nE 's/.*"bdd_solver_micros": ([0-9]+).*/\1/p' target/ci_bench.json)"
awk -v d="$dpll_us" -v b="$bdd_us" 'BEGIN { exit !(d != "" && b != "" && b + 0 <= d + 0) }' \
    || { echo "ci: BDD solver phase (${bdd_us:-missing} µs) exceeded DPLL's (${dpll_us:-missing} µs) on the hedc bench" >&2; exit 1; }
echo "viable-engine smoke ok: solver phase ${bdd_us} µs bdd <= ${dpll_us} µs dpll, outcomes identical"

echo "== governor smoke: batch under a 4 MiB per-query memory budget =="
# 4 MiB is tuned (empirically, but the byte accounting is deterministic)
# to pressure the governor onto its first ladder rungs — cache evictions
# only — on the seeded hedc batch: the footer must report degradations,
# while every outcome line (verdicts *and* iteration counts) stays
# byte-identical to the unbudgeted expectations. A drift here means a
# ladder rung changed the search; an exhaustion means the budget
# estimate regressed.
gov="$(PDA_MEM_BUDGET=4m PDA_BENCH_OUT=target/ci_bench_governed.json ./target/release/batch)"
echo "$gov"
diff scripts/expected_batch_outcomes.txt \
    <(echo "$gov" | grep -E '^(outcome [0-9]+:|tree/interned outcomes identical:|per-query outcomes identical across job counts:|viable-engine outcomes identical:)') \
    || { echo "ci: governed batch outcomes drifted — a degradation rung changed a verdict or iteration count" >&2; exit 1; }
degs="$(echo "$gov" | sed -nE 's/^resilience:.* degradations=([0-9]+).*/\1/p')"
[ -n "$degs" ] && [ "$degs" -ge 1 ] \
    || { echo "ci: governor smoke applied no degradations (degradations=${degs:-missing}) — the budget no longer pressures the ladder" >&2; exit 1; }
echo "governor smoke ok: $degs degradations, outcomes unchanged"

echo "== resilience smoke: batch under a 1 ms per-query deadline =="
# Every query must still produce a result (exit 0) and the starved
# deadline must surface as DeadlineExceeded rather than a hang or crash.
smoke="$(PDA_DEADLINE_MS=1 PDA_BENCH_OUT=target/ci_bench_starved.json ./target/release/batch)"
echo "$smoke"
echo "$smoke" | grep -Eq 'resilience: deadline_exceeded=[0-9]+ engine_faults=0' \
    || { echo "ci: resilience smoke missing its summary line" >&2; exit 1; }

echo "== daemon smoke: pda-serve supervision, quarantine, and graceful drain =="
# A live daemon must (a) keep serving after an injected worker panic —
# the fault comes back as a structured error and the cache generation is
# quarantined — and (b) exit 0 on SIGTERM with a valid journal behind.
cat > target/ci_serve.jay <<'EOF'
class C {}
fn main() {
    var a, b, c, d;
    a = null;
    b = a;
    c = null;
    d = new C;
    query qa: local b;
    query qb: local c;
    query qc: local d;
}
EOF
rm -f target/ci_serve.sock target/ci_serve_journal.jsonl
./target/release/pda serve target/ci_serve.jay --socket target/ci_serve.sock \
    --journal target/ci_serve_journal.jsonl --allow-inject \
    > target/ci_serve.log 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do [ -S target/ci_serve.sock ] && break; sleep 0.1; done
[ -S target/ci_serve.sock ] \
    || { echo "ci: daemon never bound its socket" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
req() { ./target/release/pda request target/ci_serve.sock "$1"; }
req '{"op":"health"}' | grep -q '"ready":"true"' \
    || { echo "ci: daemon health probe not ready" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
req '{"op":"solve","index":0,"inject":"panic"}' | grep -q '"error":"engine_fault"' \
    || { echo "ci: injected panic did not surface as a structured engine_fault" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
served="$(req '{"op":"solve","index":0}')"
echo "$served" | grep -q '"outcome":"proven"' \
    || { echo "ci: daemon stopped serving after an injected panic: $served" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$served" | grep -q '"generation":1' \
    || { echo "ci: injected panic did not quarantine the cache generation: $served" >&2; kill "$serve_pid" 2>/dev/null; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" \
    || { echo "ci: daemon exited non-zero on SIGTERM (see target/ci_serve.log)" >&2; exit 1; }
grep -q '"kind":"pda-batch-checkpoint"' target/ci_serve_journal.jsonl \
    || { echo "ci: drained daemon left no valid journal header" >&2; exit 1; }
grep -q '"i":0,"outcome":"proven"' target/ci_serve_journal.jsonl \
    || { echo "ci: served verdict missing from the drain journal" >&2; exit 1; }
echo "daemon smoke ok: fault isolated, generation quarantined, drained 0 with a valid journal"

echo "== chaos smoke: seeded bench under a fixed fault plan =="
# Arm the deterministic fault plane for one full bench run: a panic in
# the DPLL kernel, an injected I/O error during a warm-store rebuild
# (both absorbed by the retry policy), and a 25ms stall while a warm
# cache slot is filling (a slow worker, not a failure). The run must
# produce outcome lines byte-identical to the clean golden file, and
# the resilience line must prove all three arms actually fired.
chaos="$(PDA_FAULT_PLAN='dpll.solve@5=panic;cache.slot_fill@2=stall:25;warm.rebuild@1=ioerr' \
    PDA_RETRY_FAULTS=2 PDA_BENCH_OUT=target/ci_bench_chaos.json ./target/release/batch)"
echo "$chaos" | grep -q 'fault plane armed from PDA_FAULT_PLAN' \
    || { echo "ci: chaos bench never armed the fault plane" >&2; exit 1; }
diff scripts/expected_batch_outcomes.txt \
    <(echo "$chaos" | grep -E '^(outcome [0-9]+:|tree/interned outcomes identical:|per-query outcomes identical across job counts:|viable-engine outcomes identical:)') \
    || { echo "ci: chaos bench verdicts drifted from the golden outcomes" >&2; exit 1; }
chaos_line="$(echo "$chaos" | grep '^resilience:')"
echo "$chaos_line" | grep -Eq 'engine_faults=0 .* faults_injected=3 io_faults=1' \
    || { echo "ci: chaos bench fault accounting wrong: $chaos_line" >&2; exit 1; }
echo "$chaos_line" | grep -Eq ' retries=[1-9]' \
    || { echo "ci: chaos bench faults were never absorbed by retries: $chaos_line" >&2; exit 1; }
echo "chaos smoke ok: 3 injected faults absorbed, outcomes identical to the clean run"

echo "== chaos smoke: kill-at-journal-write daemon round-trip =="
# Life 1 is armed to abort the whole process at its second journal
# append — a hard crash mid-serve, not a graceful drain. The journal it
# leaves behind must be a loadable prefix holding the first verdict.
# Life 2 restarts clean on that journal with the watchdog on: it must
# resume the verdict, reclaim an injected non-cooperative stall within
# the watchdog window, keep serving afterwards, and drain 0.
rm -f target/ci_chaos.sock target/ci_chaos_journal.jsonl
./target/release/pda serve target/ci_serve.jay --socket target/ci_chaos.sock \
    --journal target/ci_chaos_journal.jsonl --fault-plan 'journal.append@2=abort' \
    > target/ci_chaos1.log 2>&1 &
chaos_pid=$!
for _ in $(seq 1 100); do [ -S target/ci_chaos.sock ] && break; sleep 0.1; done
[ -S target/ci_chaos.sock ] \
    || { echo "ci: chaos daemon never bound its socket" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
creq() { ./target/release/pda request target/ci_chaos.sock "$1"; }
creq '{"op":"solve","index":0}' | grep -q '"outcome":"proven"' \
    || { echo "ci: chaos daemon failed its first solve" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
if creq '{"op":"solve","index":1}' > /dev/null 2>&1; then
    echo "ci: chaos daemon answered past its armed abort point" >&2
    kill "$chaos_pid" 2>/dev/null
    exit 1
fi
if wait "$chaos_pid" 2>/dev/null; then
    echo "ci: chaos daemon exited cleanly instead of aborting at journal.append" >&2
    exit 1
fi
grep -q '"i":0,"outcome":"proven"' target/ci_chaos_journal.jsonl \
    || { echo "ci: crashed daemon left no loadable journal prefix" >&2; exit 1; }
rm -f target/ci_chaos.sock
./target/release/pda serve target/ci_serve.jay --socket target/ci_chaos.sock \
    --journal target/ci_chaos_journal.jsonl --allow-inject --watchdog-ms 200 \
    > target/ci_chaos2.log 2>&1 &
chaos_pid=$!
for _ in $(seq 1 100); do [ -S target/ci_chaos.sock ] && break; sleep 0.1; done
[ -S target/ci_chaos.sock ] \
    || { echo "ci: restarted chaos daemon never bound its socket" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
creq '{"op":"solve","index":0}' | grep -q '"resumed":"true"' \
    || { echo "ci: restarted daemon did not resume the crash-survivor verdict" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
creq '{"op":"solve","index":2,"inject":"stall:2000"}' | grep -q '"error":"engine_stall"' \
    || { echo "ci: watchdog never reclaimed the injected stall" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
creq '{"op":"solve","index":2}' | grep -q '"outcome":"proven"' \
    || { echo "ci: daemon stopped serving after a watchdog reclaim" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
creq '{"op":"health"}' | grep -q '"watchdog_fired":1' \
    || { echo "ci: health does not account the watchdog firing" >&2; kill "$chaos_pid" 2>/dev/null; exit 1; }
kill -TERM "$chaos_pid"
wait "$chaos_pid" \
    || { echo "ci: restarted chaos daemon exited non-zero on SIGTERM (see target/ci_chaos2.log)" >&2; exit 1; }
grep -q 'watchdog=1' target/ci_chaos2.log \
    || { echo "ci: drain summary missing the watchdog count" >&2; exit 1; }
echo "chaos smoke ok: crash at journal.append left a resumable journal; watchdog reclaimed a frozen solve"

echo "== scaling smoke: seeded scale bench, jobs 1 vs 8 =="
# The scale bin replays the hedc batch at jobs=1 and jobs=8 (grid capped
# for CI speed) and self-asserts per-query outcome identity against the
# sequential reference (a panic exits non-zero). CI additionally pins
# the meta-inflation guard: aggregate backward-phase attribution at
# jobs=8 must stay within 1.5x of jobs=1 — before the thread clamp,
# oversubscribed workers time-sharing the core stretched it several
# fold. Wall-clock *speedup* is deliberately not asserted here: shared
# CI boxes time-share too, and the recorded BENCH_scale.json carries
# the perf claim.
scale_out="$(PDA_JOBS_GRID=1,8 PDA_BENCH_OUT=target/ci_scale.json ./target/release/scale)"
echo "$scale_out"
echo "$scale_out" | grep -q 'outcomes_identical=true' \
    || { echo "ci: scaling smoke missing its summary line" >&2; exit 1; }
meta_ratio="$(echo "$scale_out" | sed -nE 's/^scale: .*meta_ratio_j8_vs_j1=([0-9.]+).*/\1/p')"
awk -v r="$meta_ratio" 'BEGIN { exit !(r != "" && r <= 1.5) }' \
    || { echo "ci: meta-phase inflation returned — jobs=8 aggregate meta is ${meta_ratio:-missing}x jobs=1 (limit 1.5x)" >&2; exit 1; }
grep -q '"outcomes_identical": true' target/ci_scale.json \
    || { echo "ci: BENCH_scale.json missing outcomes_identical" >&2; exit 1; }
grep -q '"jobs":8' target/ci_scale.json && grep -q '"jobs":1' target/ci_scale.json \
    || { echo "ci: BENCH_scale.json missing grid points" >&2; exit 1; }
echo "scaling smoke ok: outcomes identical, meta ratio ${meta_ratio}x"

echo "ci: all checks passed"
