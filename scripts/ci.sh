#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Must pass fully offline:
# the workspace has zero registry dependencies, so no step may hit the
# network. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== resilience smoke: batch under a 1 ms per-query deadline =="
# Every query must still produce a result (exit 0) and the starved
# deadline must surface as DeadlineExceeded rather than a hang or crash.
smoke="$(PDA_DEADLINE_MS=1 ./target/release/batch)"
echo "$smoke"
echo "$smoke" | grep -Eq 'resilience: deadline_exceeded=[0-9]+ engine_faults=0' \
    || { echo "ci: resilience smoke missing its summary line" >&2; exit 1; }

echo "ci: all checks passed"
